"""Probability distributions over measurement outcomes.

A :class:`Distribution` maps bitstrings to probabilities.  Bitstrings are
stored as Python integers with the **first measured qubit in the most
significant bit** — the same big-endian convention used by the statevector
simulator (qubit 0 is the most significant index bit).

The paper quantifies accuracy with the Hellinger fidelity, evaluated on the
complete distribution for sparse outputs and on single-qubit marginals for
dense (VQA-style) outputs; both metrics live here.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np


def pack_bit_rows(bits: np.ndarray) -> np.ndarray:
    """Per-row big-endian integer keys of a ``(rows, width)`` bit matrix.

    A packed-bits dot product replaces per-row Python loops: widths below
    63 use a ``uint64`` weight vector; wider selections fall back to
    object-dtype Python integers (matrix width is unbounded here).
    """
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    if width < 63:
        weights = (1 << np.arange(width - 1, -1, -1)).astype(np.uint64)
        return bits.astype(np.uint64) @ weights
    # wide rows: uint64 dot products per 62-bit chunk, then shift-or the
    # chunk keys into Python ints — far cheaper than an object-dtype matmul
    acc = None
    for start in range(0, width, 62):
        sub = bits[:, start : start + 62]
        w = sub.shape[1]
        weights = (1 << np.arange(w - 1, -1, -1)).astype(np.uint64)
        vals = sub.astype(np.uint64) @ weights
        acc = vals.astype(object) if acc is None else (acc << w) | vals.astype(object)
    return acc


def counts_from_bit_rows(bits: np.ndarray) -> dict[int, int]:
    """Outcome-key counts of a ``(shots, width)`` bit matrix."""
    keys, counts = np.unique(pack_bit_rows(bits), return_counts=True)
    return {int(k): int(c) for k, c in zip(keys, counts)}


class Distribution:
    """A (sparse) probability distribution over ``n_bits``-bit outcomes."""

    __slots__ = ("n_bits", "probs")

    def __init__(self, n_bits: int, probs: Mapping[int, float]):
        self.n_bits = int(n_bits)
        self.probs: dict[int, float] = {
            int(k): float(v) for k, v in probs.items() if v != 0.0
        }

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_counts(cls, n_bits: int, counts: Mapping[int, int]) -> "Distribution":
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("empty counts")
        return cls(n_bits, {k: v / total for k, v in counts.items()})

    @classmethod
    def from_array(cls, probabilities: np.ndarray) -> "Distribution":
        """From a dense array of length ``2^n`` (index = big-endian bits)."""
        size = len(probabilities)
        n_bits = size.bit_length() - 1
        if 2**n_bits != size:
            raise ValueError("array length must be a power of 2")
        nz = np.flatnonzero(probabilities)
        return cls(n_bits, {int(i): float(probabilities[i]) for i in nz})

    @classmethod
    def point(cls, n_bits: int, outcome: int) -> "Distribution":
        return cls(n_bits, {outcome: 1.0})

    # -- queries --------------------------------------------------------------

    def __getitem__(self, outcome: int) -> float:
        return self.probs.get(int(outcome), 0.0)

    def __len__(self) -> int:
        return len(self.probs)

    def __iter__(self):
        return iter(self.probs.items())

    def total(self) -> float:
        return sum(self.probs.values())

    def to_array(self) -> np.ndarray:
        if self.n_bits > 26:
            raise ValueError("distribution too wide for dense conversion")
        out = np.zeros(2**self.n_bits)
        for k, v in self.probs.items():
            out[k] = v
        return out

    def bits(self, outcome: int) -> tuple[int, ...]:
        """Bit tuple of an outcome (first measured qubit first)."""
        return tuple(
            (outcome >> (self.n_bits - 1 - i)) & 1 for i in range(self.n_bits)
        )

    # -- transformations --------------------------------------------------------

    def normalized(self) -> "Distribution":
        total = self.total()
        if total <= 0:
            raise ValueError("cannot normalise an all-zero distribution")
        return Distribution(self.n_bits, {k: v / total for k, v in self.probs.items()})

    def clipped(self) -> "Distribution":
        """Drop negative quasi-probabilities (reconstruction noise) and renormalise."""
        positive = {k: v for k, v in self.probs.items() if v > 0}
        return Distribution(self.n_bits, positive).normalized()

    def marginal(self, keep: Iterable[int]) -> "Distribution":
        """Marginalise onto bit positions ``keep`` (in the given order)."""
        keep = list(keep)
        out: dict[int, float] = {}
        for outcome, p in self.probs.items():
            bits = self.bits(outcome)
            key = 0
            for b in (bits[i] for i in keep):
                key = (key << 1) | b
            out[key] = out.get(key, 0.0) + p
        return Distribution(len(keep), out)

    def single_bit_marginals(self) -> np.ndarray:
        """Array of shape ``(n_bits, 2)`` with per-bit outcome probabilities."""
        out = np.zeros((self.n_bits, 2))
        for outcome, p in self.probs.items():
            for i, b in enumerate(self.bits(outcome)):
                out[i, b] += p
        return out

    def sample(self, shots: int, rng: np.random.Generator | int | None = None):
        """Draw ``shots`` outcomes; returns a counts dict."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        keys = list(self.probs)
        weights = np.array([self.probs[k] for k in keys])
        weights = weights / weights.sum()
        draws = rng.choice(len(keys), size=shots, p=weights)
        counts: dict[int, int] = {}
        for d in draws:
            counts[keys[d]] = counts.get(keys[d], 0) + 1
        return counts

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{k:0{self.n_bits}b}: {v:.4f}"
            for k, v in sorted(self.probs.items())[:6]
        )
        more = "..." if len(self.probs) > 6 else ""
        return f"Distribution({self.n_bits} bits; {preview}{more})"


def hellinger_fidelity(p: Distribution, q: Distribution) -> float:
    """``(sum_i sqrt(p_i q_i))**2`` — 1.0 for identical distributions."""
    if p.n_bits != q.n_bits:
        raise ValueError("distributions have different widths")
    overlap = 0.0
    for outcome, pv in p.probs.items():
        qv = q[outcome]
        if pv > 0 and qv > 0:
            overlap += math.sqrt(pv * qv)
    return overlap**2


def total_variation_distance(p: Distribution, q: Distribution) -> float:
    keys = set(p.probs) | set(q.probs)
    return 0.5 * sum(abs(p[k] - q[k]) for k in keys)


def mean_marginal_fidelity(p: Distribution, q: Distribution) -> float:
    """Mean single-bit-marginal Hellinger fidelity (the paper's dense metric)."""
    if p.n_bits != q.n_bits:
        raise ValueError("distributions have different widths")
    pm = p.single_bit_marginals()
    qm = q.single_bit_marginals()
    fids = (np.sqrt(pm * qm).sum(axis=1)) ** 2
    return float(fids.mean())


def kl_divergence(p: Distribution, q: Distribution) -> float:
    """``D(p || q)``; infinite when p has support outside q's."""
    if p.n_bits != q.n_bits:
        raise ValueError("distributions have different widths")
    total = 0.0
    for outcome, pv in p.probs.items():
        qv = q[outcome]
        if qv <= 0.0:
            return math.inf
        total += pv * math.log(pv / qv)
    return total


def cross_entropy(p: Distribution, q: Distribution) -> float:
    """``-sum_x p(x) log q(x)`` (nats); infinite outside q's support."""
    if p.n_bits != q.n_bits:
        raise ValueError("distributions have different widths")
    total = 0.0
    for outcome, pv in p.probs.items():
        qv = q[outcome]
        if qv <= 0.0:
            return math.inf
        total -= pv * math.log(qv)
    return total


def marginal_fidelity_from_arrays(
    pm: np.ndarray, qm: np.ndarray
) -> float:
    """Mean Hellinger fidelity between two ``(n, 2)`` marginal arrays."""
    fids = (np.sqrt(np.clip(pm, 0, None) * np.clip(qm, 0, None)).sum(axis=1)) ** 2
    return float(fids.mean())
