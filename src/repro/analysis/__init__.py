"""Analysis utilities: distributions, fidelity metrics, streaming folds."""

from repro.analysis.distributions import (
    Distribution,
    cross_entropy,
    hellinger_fidelity,
    kl_divergence,
    mean_marginal_fidelity,
    total_variation_distance,
)
from repro.analysis.streaming import StreamingAccumulator

__all__ = [
    "Distribution",
    "StreamingAccumulator",
    "hellinger_fidelity",
    "mean_marginal_fidelity",
    "total_variation_distance",
    "kl_divergence",
    "cross_entropy",
]
