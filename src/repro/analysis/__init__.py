"""Analysis utilities: probability distributions and fidelity metrics."""

from repro.analysis.distributions import (
    Distribution,
    cross_entropy,
    hellinger_fidelity,
    kl_divergence,
    mean_marginal_fidelity,
    total_variation_distance,
)

__all__ = [
    "Distribution",
    "hellinger_fidelity",
    "mean_marginal_fidelity",
    "total_variation_distance",
    "kl_divergence",
    "cross_entropy",
]
