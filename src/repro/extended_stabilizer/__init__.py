"""Clifford+T simulation by low-rank stabilizer decomposition.

Implements the approach of Bravyi et al. (the paper's reference [5], the
algorithm behind Qiskit's *extended stabilizer* simulator): the state is a
sum of phase-exact stabilizer states (CH forms); Clifford gates act on every
term, and each non-Clifford diagonal rotation ``Z^a = alpha*I + beta*S``
doubles the number of terms.  Weak simulation (sampling) uses a Metropolis
chain over bitstrings, as Qiskit does — including its characteristic
failure on sparse/peaked distributions (paper Fig. 7).
"""

from repro.extended_stabilizer.simulator import (
    ExtendedStabilizerSimulator,
    StabilizerSum,
)

__all__ = ["ExtendedStabilizerSimulator", "StabilizerSum"]
