"""Sum-of-stabilizers state and the extended-stabilizer simulator."""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.analysis.distributions import Distribution, enumerated_bit_rows
from repro.chform.state import CHForm
from repro.circuits.circuit import Circuit


def _diagonal_branch_coefficients(d0: complex, d1: complex) -> tuple[complex, complex]:
    """Solve ``diag(d0, d1) = alpha*I + beta*S`` (S = diag(1, i)).

    Any single-qubit diagonal gate splits a stabilizer term into an identity
    branch and an S branch — the ``Z^a = a*I + b*S`` decomposition that makes
    each T gate double the stabilizer rank.
    """
    beta = (d0 - d1) / (1 - 1j)
    alpha = d0 - beta
    return alpha, beta


def _euler_zxz(matrix: np.ndarray) -> tuple[complex, float, float, float]:
    """Factor a 1-qubit unitary as ``phase * Z^a . X^b . Z^c`` (ZPow/XPow).

    Exponents are in "turns of pi" (``Z^a = diag(1, e^{i pi a})``), matching
    :func:`repro.circuits.gates.ZPow`.
    """
    u = np.asarray(matrix, dtype=complex)
    # U = e^{i phi} Rz(l) Ry(t) Rz(r) standard Euler; convert Ry to X^b via
    # Ry(t) = Z^{-1/2} X^{t/pi} Z^{1/2} up to phase. Simpler: solve directly.
    # Write U = phase * diag(1, e^{i pi a}) H diag(1, e^{i pi b}) H diag(1, e^{i pi c})
    # and fit numerically by extracting angles from the matrix elements of
    # X^b = H Z^b H = [[cos, -i' sin...]] form:
    #   X^b = e^{i pi b/2} [[cos(pi b/2), -i sin(pi b/2)],
    #                       [-i sin(pi b/2), cos(pi b/2)]]
    abs00 = abs(u[0, 0])
    abs01 = abs(u[0, 1])
    b = 2 * math.atan2(abs01, abs00) / math.pi  # in [0, 1]
    xb_half = math.pi * b / 2
    xb = cmath.exp(1j * xb_half) * np.array(
        [
            [math.cos(xb_half), -1j * math.sin(xb_half)],
            [-1j * math.sin(xb_half), math.cos(xb_half)],
        ]
    )
    # remaining: U = phase * diag(1, za) @ xb @ diag(1, zc)
    # u00 = phase * xb00 ; u01 = phase * xb01 * zc
    # u10 = phase * za * xb10 ; u11 = phase * za * xb11 * zc
    # equations: u00 = phase*xb00 ; u01 = phase*xb01*zc ;
    #            u10 = phase*za*xb10 ; u11 = phase*za*xb11*zc
    if abs(xb[0, 0]) >= abs(xb[0, 1]):
        phase = u[0, 0] / xb[0, 0]
        zc = u[0, 1] / (phase * xb[0, 1]) if abs(xb[0, 1]) > 1e-12 else 1.0
        za = u[1, 0] / (phase * xb[1, 0]) if abs(xb[1, 0]) > 1e-12 else (
            u[1, 1] / (phase * xb[1, 1] * zc)
        )
    else:
        phase_zc = u[0, 1] / xb[0, 1]
        phase_za = u[1, 0] / xb[1, 0]
        if abs(xb[1, 1]) > 1e-12:
            phase = phase_za * phase_zc / (u[1, 1] / xb[1, 1])
        else:
            # b == 1 exactly: zc is pure gauge, absorb it into the phase
            phase = phase_zc
        za = phase_za / phase
        zc = phase_zc / phase
    za /= abs(za)
    zc /= abs(zc)
    phase /= abs(phase)
    a = cmath.phase(za) / math.pi
    c = cmath.phase(zc) / math.pi
    return phase, a, b, c


class StabilizerSum:
    """A Clifford+T state: ``sum_i |phi_i>`` with CH-form terms.

    Branch coefficients are folded into each term's global scalar ``w``.
    """

    def __init__(self, n: int, max_terms: int = 4096):
        self.n = int(n)
        self.max_terms = max_terms
        self.terms: list[CHForm] = [CHForm(n)]

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    # -- gate application ------------------------------------------------------

    def apply_clifford(self, gate, qubits: tuple[int, ...]) -> None:
        for term in self.terms:
            term.apply_gate(gate, qubits)

    def apply_diagonal_branch(self, q: int, d0: complex, d1: complex) -> None:
        """Apply ``diag(d0, d1)`` on qubit ``q``.

        Clifford diagonals (relative phase a power of i) are applied as
        S-gate chains without increasing the rank; anything else branches
        every term into an identity part and an S part.
        """
        ratio = d1 / d0
        for k in range(4):
            if abs(ratio - 1j**k) < 1e-12:
                for term in self.terms:
                    for _ in range(k):
                        term.apply_s(q)
                    term.w *= d0
                return
        alpha, beta = _diagonal_branch_coefficients(d0, d1)
        if len(self.terms) * 2 > self.max_terms:
            raise RuntimeError(
                f"stabilizer rank would exceed max_terms={self.max_terms}; "
                "too many non-Clifford gates"
            )
        new_terms: list[CHForm] = []
        for term in self.terms:
            if abs(alpha) > 1e-14:
                identity_branch = term.copy()
                identity_branch.w *= alpha
                new_terms.append(identity_branch)
            if abs(beta) > 1e-14:
                s_branch = term
                s_branch.apply_s(q)
                s_branch.w *= beta
                new_terms.append(s_branch)
        self.terms = new_terms

    def apply_operation(self, gate, qubits: tuple[int, ...]) -> None:
        if gate.is_clifford:
            self.apply_clifford(gate, qubits)
            return
        name = gate.name
        if name in ("T", "TDG", "ZP", "RZ") or (
            gate.num_qubits == 1
            and np.allclose(gate.matrix, np.diag(np.diag(gate.matrix)), atol=1e-12)
        ):
            d0, d1 = gate.matrix[0, 0], gate.matrix[1, 1]
            self.apply_diagonal_branch(qubits[0], d0, d1)
            return
        if gate.num_qubits == 2 and np.allclose(
            gate.matrix, np.diag(np.diag(gate.matrix)), atol=1e-12
        ):
            # any 2-qubit diagonal factorises over x, y and x XOR y:
            #   phi(x, y) = alpha x + beta y + gamma (x ^ y)  (+ phi(0,0))
            # so it costs at most three diagonal branches; the XOR factor is
            # realised as CX . diag(1, e^{i gamma})_target . CX.  ZZPow hits
            # the pure-gamma case (one branch), matching its T-count.
            d = np.diag(gate.matrix)
            phi01 = float(np.angle(d[1] / d[0]))
            phi10 = float(np.angle(d[2] / d[0]))
            phi11 = float(np.angle(d[3] / d[0]))
            # phi11 angle wraps mod 2pi; the linear system is over the reals,
            # so solve with the branch that keeps exponents consistent
            alpha = (phi10 + phi11 - phi01) / 2
            beta = (phi01 + phi11 - phi10) / 2
            gamma = (phi10 + phi01 - phi11) / 2
            qa, qb = qubits
            from repro.circuits import gates as g

            self.apply_diagonal_branch(qa, 1.0, cmath.exp(1j * alpha))
            self.apply_diagonal_branch(qb, 1.0, cmath.exp(1j * beta))
            self.apply_clifford(g.CX, (qa, qb))
            self.apply_diagonal_branch(qb, 1.0, cmath.exp(1j * gamma))
            self.apply_clifford(g.CX, (qa, qb))
            for term in self.terms:
                term.w *= d[0]
            return
        if gate.num_qubits == 1:
            from repro.circuits import gates as g

            phase, a, b, c = _euler_zxz(gate.matrix)
            for exponent, conjugate in ((c, False), (b, True), (a, False)):
                zgate = g.ZPow(exponent)
                if conjugate:
                    self.apply_clifford(g.H, qubits)
                if zgate.is_clifford:
                    self.apply_clifford(zgate, qubits)
                else:
                    d = zgate.matrix
                    self.apply_diagonal_branch(qubits[0], d[0, 0], d[1, 1])
                if conjugate:
                    self.apply_clifford(g.H, qubits)
            for term in self.terms:
                term.w *= phase
            return
        raise ValueError(
            f"non-Clifford gate {gate!r} is not supported by the extended "
            "stabilizer simulator"
        )

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.n_qubits != self.n:
            raise ValueError("circuit width does not match state")
        for op in circuit.ops:
            self.apply_operation(op.gate, op.qubits)

    # -- readout ------------------------------------------------------------------

    def amplitude(self, bits: np.ndarray) -> complex:
        return sum((term.amplitude(bits) for term in self.terms), 0.0)

    def amplitudes(self, bits_matrix: np.ndarray) -> np.ndarray:
        """Batched amplitudes over a ``(B, n)`` bit matrix (sum over terms)."""
        bits = np.asarray(bits_matrix, dtype=bool)
        total = np.zeros(bits.shape[0], dtype=complex)
        for term in self.terms:
            total += term.amplitudes(bits)
        return total

    def probability(self, bits: np.ndarray) -> float:
        return abs(self.amplitude(bits)) ** 2

    def to_statevector(self) -> np.ndarray:
        if self.n > 12:
            raise ValueError("to_statevector limited to 12 qubits")
        out = np.zeros(2**self.n, dtype=complex)
        for term in self.terms:
            out += term.to_statevector()
        return out


class ExtendedStabilizerSimulator:
    """Clifford+T sampler in the style of Qiskit's extended stabilizer.

    Weak simulation uses a Metropolis random walk over bitstrings with
    single-bit-flip proposals and acceptance ratio ``p(x')/p(x)`` computed
    from exact amplitudes.  Like Qiskit's implementation, this mixes well on
    dense distributions (VQA-style outputs) and fails badly on sparse ones
    whose support the chain cannot find — reproducing the fidelity collapse
    the paper observes on the repetition-code benchmark (Fig. 7).

    ``max_qubits`` defaults to 63, matching Qiskit's limit.
    """

    name = "extended_stabilizer"

    def __init__(
        self,
        max_qubits: int = 63,
        mixing_steps: int = 5000,
        max_terms: int = 4096,
    ):
        self.max_qubits = max_qubits
        self.mixing_steps = mixing_steps
        self.max_terms = max_terms

    def run(self, circuit: Circuit) -> StabilizerSum:
        if circuit.n_qubits > self.max_qubits:
            raise ValueError(
                f"{circuit.n_qubits} qubits exceeds the extended-stabilizer "
                f"limit of {self.max_qubits}"
            )
        state = StabilizerSum(circuit.n_qubits, max_terms=self.max_terms)
        state.apply_circuit(circuit)
        return state

    def probabilities(self, circuit: Circuit) -> Distribution:
        """Exact (strong) simulation by amplitude enumeration; small n only."""
        n = circuit.n_qubits
        if n > 16:
            raise ValueError("exact enumeration limited to 16 qubits")
        state = self.run(circuit)
        bits = enumerated_bit_rows(n)
        probs = np.abs(state.amplitudes(bits)) ** 2
        full = Distribution.from_array(probs)
        measured = circuit.measured_qubits
        if measured == tuple(range(n)):
            return full
        return full.marginal(list(measured))

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        rng: np.random.Generator | int | None = None,
        mixing_steps: int | None = None,
    ) -> Distribution:
        """Metropolis weak simulation; returns the empirical distribution."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        state = self.run(circuit)
        n = circuit.n_qubits
        steps = self.mixing_steps if mixing_steps is None else mixing_steps
        bits = rng.integers(0, 2, size=n, dtype=np.uint8).astype(bool)
        p_current = state.probability(bits)
        measured = list(circuit.measured_qubits)
        total_steps = steps + shots
        flips = rng.integers(0, n, size=total_steps)
        unif = rng.random(total_steps)
        recorded = np.empty((shots, n), dtype=bool)
        for step in range(total_steps):
            q = int(flips[step])
            bits[q] ^= True
            p_new = state.probability(bits)
            if p_current > 0 and unif[step] * p_current > p_new:
                bits[q] ^= True  # reject
            else:
                p_current = p_new
            if step >= steps:
                recorded[step - steps] = bits
        return Distribution.from_bit_rows(recorded[:, measured])
