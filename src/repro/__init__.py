"""Reproduction of "Clifford-based Circuit Cutting for Quantum Simulation".

The top-level package re-exports the most commonly used pieces; see the
subpackages for the full surface:

* :mod:`repro.circuits` — circuit IR and gate set
* :mod:`repro.backends` — the backend registry, capability-based router
  and variant cache that tie the simulators together
* :mod:`repro.stabilizer` — tableau (Stim-style) simulation
* :mod:`repro.statevector` — exact dense simulation
* :mod:`repro.mps` — matrix-product-state simulation
* :mod:`repro.extended_stabilizer` — Clifford+T low-rank stabilizer simulation
* :mod:`repro.core` — the SuperSim circuit-cutting framework
* :mod:`repro.apps` — benchmark applications (HWEA, QAOA, QEC, ...)
* :mod:`repro.analysis` — distributions and fidelity metrics
"""

__version__ = "0.1.0"
