"""The error taxonomy and fault accounting of the execution engine.

Before this module, a failing fragment job surfaced as whatever anonymous
exception the worker pool re-raised — no fragment, no backend, no attempt
count, no way to tell a transient fault from a poisoned job.  The typed
hierarchy here attaches that context:

* :class:`ReproError` — base class of every engine-raised failure;
* :class:`BackendExecutionError` — a backend raised while simulating a
  variant (after any configured retries were exhausted);
* :class:`JobTimeoutError` — a variant exceeded its soft deadline (derived
  from the calibrated cost model, see
  :class:`~repro.core.config.ExecutionConfig`) too many times;
* :class:`WorkerCrashError` — a worker process died (segfault, OOM kill,
  ``BrokenProcessPool``) with this job in flight too many times, so the
  job was quarantined as poison.

Alongside the exceptions, :class:`FaultReport` is the ledger of every
fault the engine *survived*: retries, timeouts, worker crashes, pool
rebuilds, backend fallbacks, quarantines and kernel-tier demotions.  A
run that completes returns its report as ``SuperSimResult.faults``, so
"it worked" and "it worked after three retries and a pool rebuild" are
distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: recognised FaultEvent kinds (also the FaultReport counter names)
FAULT_KINDS = (
    "retry",
    "timeout",
    "crash",
    "pool_rebuild",
    "fallback",
    "quarantine",
    "kernel_demotion",
    "replan",
    # service-resilience kinds (coordinator/peer-level faults)
    "peer_error",
    "heartbeat_miss",
    "reconnect",
    "recovery",
)


class ReproError(Exception):
    """Base class for every failure the execution engine raises.

    Subclasses attach job context as attributes (``fragment_index``,
    ``backend``, ``attempts``) so callers — and the fault report — can
    say *which* piece of work failed, not just that something did.
    """

    def __init__(
        self,
        message: str,
        *,
        fragment_index: int | None = None,
        backend: str | None = None,
        attempts: int | None = None,
    ):
        parts = [message]
        context = []
        if fragment_index is not None:
            context.append(f"fragment={fragment_index}")
        if backend is not None:
            context.append(f"backend={backend!r}")
        if attempts is not None:
            context.append(f"attempts={attempts}")
        if context:
            parts.append(f"[{', '.join(context)}]")
        super().__init__(" ".join(parts))
        self.fragment_index = fragment_index
        self.backend = backend
        self.attempts = attempts


class BackendExecutionError(ReproError):
    """A backend raised while simulating a fragment variant.

    Raised after the configured retry budget (and, under
    ``failure_policy="degrade"``, every capability-admitted fallback
    backend) is exhausted.  ``__cause__`` carries the last underlying
    backend exception.
    """


class JobTimeoutError(ReproError):
    """A fragment variant exceeded its soft deadline too many times.

    The deadline derives from the calibrated cost model
    (``Backend.estimate_cost`` x ``cost_scales`` x
    ``ExecutionConfig.timeout_safety``) or from an explicit
    ``ExecutionConfig.job_timeout``.
    """

    def __init__(self, message: str, *, timeout: float | None = None, **context):
        if timeout is not None:
            message = f"{message} (soft timeout {timeout:.3g}s)"
        super().__init__(message, **context)
        self.timeout = timeout


class WorkerCrashError(ReproError):
    """A job was in flight across too many worker crashes: quarantined.

    The engine cannot always attribute a crash (a ``BrokenProcessPool``
    kills every in-flight future at once), so a job is only declared
    poison after ``ExecutionConfig.max_job_crashes`` crashes with it in
    flight — innocent bystanders of one crash are simply resubmitted.
    The distributed service maps a remote worker disconnect onto the same
    semantics: jobs in flight on a lost worker are charged one crash and
    redistributed, and only a job that outlives ``max_job_crashes``
    worker losses raises this.
    """


class ServiceError(ReproError):
    """Base class for failures raised by the distributed execution service
    (:mod:`repro.service`): protocol violations, lost coordinator
    connections, requests failing server-side without a more specific
    engine error to forward."""


class ConnectionLostError(ServiceError, ConnectionError):
    """The connection to the coordinator dropped and could not be restored.

    Raised by :class:`~repro.service.client.ServiceClient` and the worker
    loop once their jittered-exponential-backoff reconnect budget is
    exhausted (or reconnection is disabled).  Subclasses both
    :class:`ServiceError` and :class:`ConnectionError`, so transport-level
    ``except ConnectionError`` handlers keep working.
    """


class QuotaExceededError(ServiceError):
    """The coordinator's admission control rejected a request (429-style).

    ``retry_after`` is the coordinator's hint, in seconds, for when the
    tenant's token bucket will hold enough cost units to admit this
    request; ``estimate`` carries the
    :class:`~repro.core.plan.CostEstimate` the request was priced with
    (when the coordinator included its quote in the rejection).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
        estimate=None,
        **context,
    ):
        if retry_after is not None:
            message = f"{message} (retry after ~{retry_after:.3g}s)"
        super().__init__(message, **context)
        self.retry_after = retry_after
        self.estimate = estimate


@dataclass(frozen=True)
class FaultEvent:
    """One fault the engine observed (and usually survived).

    ``kind`` is one of :data:`FAULT_KINDS`; ``fragment_index`` /
    ``backend`` / ``attempt`` locate the job where that makes sense, and
    ``detail`` is a human-readable description (typically the repr of the
    underlying exception, or what the engine fell back to).
    """

    kind: str
    fragment_index: int | None = None
    backend: str | None = None
    attempt: int | None = None
    detail: str = ""

    def __repr__(self) -> str:
        where = []
        if self.fragment_index is not None:
            where.append(f"fragment {self.fragment_index}")
        if self.backend is not None:
            where.append(self.backend)
        loc = f" @ {', '.join(where)}" if where else ""
        return f"<{self.kind}{loc}: {self.detail}>"


@dataclass
class FaultReport:
    """The ledger of faults a run survived (``SuperSimResult.faults``).

    Truthiness reflects whether anything at all went wrong — a clean run
    reports ``bool(result.faults) is False`` — and the per-kind counters
    (``retries``, ``timeouts``, ``crashes``, ``pool_rebuilds``,
    ``fallbacks``, ``quarantined``, ``kernel_demotions``, ``replans``)
    summarise the event list.
    """

    events: list[FaultEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        *,
        fragment_index: int | None = None,
        backend: str | None = None,
        attempt: int | None = None,
        detail: str = "",
    ) -> FaultEvent:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})"
            )
        event = FaultEvent(
            kind=kind,
            fragment_index=fragment_index,
            backend=backend,
            attempt=attempt,
            detail=detail,
        )
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def of_kind(self, kind: str) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def retries(self) -> int:
        return self.count("retry")

    @property
    def timeouts(self) -> int:
        return self.count("timeout")

    @property
    def crashes(self) -> int:
        return self.count("crash")

    @property
    def pool_rebuilds(self) -> int:
        return self.count("pool_rebuild")

    @property
    def fallbacks(self) -> int:
        return self.count("fallback")

    @property
    def quarantined(self) -> int:
        return self.count("quarantine")

    @property
    def kernel_demotions(self) -> int:
        return self.count("kernel_demotion")

    @property
    def replans(self) -> int:
        return self.count("replan")

    def extend(self, other: "FaultReport") -> None:
        """Fold another report's events into this one (batch layers)."""
        self.events.extend(other.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def summary(self) -> dict[str, int]:
        """Non-zero per-kind counts, e.g. ``{"retry": 3, "pool_rebuild": 1}``."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def __repr__(self) -> str:
        if not self.events:
            return "FaultReport(clean)"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.summary().items()))
        return f"FaultReport({inner})"
