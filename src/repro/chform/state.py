"""The CH form: ``|phi> = w * U_C * U_H |s>`` with exact global phase.

Gate support: S, CZ, CX (native C-type left-multiplications), Pauli gates,
and H (the nontrivial update).  Everything else is routed through
``Gate.stabilizer_decomposition()``.  The Hadamard update follows the
desuperposition construction of Bravyi et al., *Simulation of quantum
circuits by low-rank stabilizer decompositions* (Quantum 3, 181, 2019):

``H_q |phi| = (w/sqrt2) U_C (P + Q) U_H |s>`` with ``P = U_C^dag X_q U_C``
and ``Q = U_C^dag Z_q U_C``; pushing both Paulis through the Hadamard layer
turns the sum into a two-basis-state superposition ``mu|t> + nu|u>`` under
``U_H``, which is then re-expressed in canonical CH form.  Two cases arise:

* some differing qubit has no Hadamard (case A): a CX fan from that pivot
  collapses the superposition to one qubit, whose ``|0> + i^e |1>`` factor
  becomes (S^b) H |c|;
* every differing qubit is under a Hadamard (case B): the state is a
  phased parity state, expressible with S/CZ diagonal dressing and a CX fan.

Amplitudes ``<x|phi>`` cost O(n^2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.chform.ctableau import CTypeTableau
from repro.circuits.circuit import Circuit

_SQRT_HALF = math.sqrt(0.5)


class CHForm:
    """A stabilizer state with exact phase, initialised to ``|0...0>``."""

    def __init__(self, n: int):
        self.n = int(n)
        self.w: complex = 1.0 + 0.0j
        self.tableau = CTypeTableau(n)
        self.v = np.zeros(n, dtype=bool)  # Hadamard layer
        self.s = np.zeros(n, dtype=bool)  # basis state

    def copy(self) -> "CHForm":
        out = CHForm.__new__(CHForm)
        out.n = self.n
        out.w = self.w
        out.tableau = self.tableau.copy()
        out.v = self.v.copy()
        out.s = self.s.copy()
        return out

    def is_zero(self) -> bool:
        return self.w == 0

    # -- gate application ---------------------------------------------------

    def apply_s(self, q: int) -> None:
        self.tableau.left_s(q)

    def apply_sdg(self, q: int) -> None:
        self.tableau.left_sdg(q)

    def apply_cz(self, a: int, b: int) -> None:
        self.tableau.left_cz(a, b)

    def apply_cx(self, c: int, t: int) -> None:
        self.tableau.left_cx(c, t)

    def apply_h(self, q: int) -> None:
        if self.is_zero():
            return
        # P = U_C^dag X_q U_C ; Q = U_C^dag Z_q U_C (pure Z)
        tab = self.tableau
        p_phase = int(tab.fwd_g[q])
        p_x = tab.fwd_x[q].copy()
        p_z = tab.fwd_z[q].copy()
        q_z = tab.fwd_zz[q].copy()
        # push through the Hadamard layer: swap x/z on v-qubits; each
        # v-qubit carrying both picks up (-1) (H XZ H = ZX = -XZ)
        p_phase = (p_phase + 2 * int(np.count_nonzero(self.v & p_x & p_z))) % 4
        p_x2 = np.where(self.v, p_z, p_x)
        p_z2 = np.where(self.v, p_x, p_z)
        q_x2 = np.where(self.v, q_z, np.zeros(self.n, dtype=bool))
        q_z2 = np.where(self.v, np.zeros(self.n, dtype=bool), q_z)
        # apply to |s>: X^x Z^z |s> = (-1)^{z.s} |s ^ x>
        k1 = (p_phase + 2 * int(np.count_nonzero(p_z2 & self.s))) % 4
        t = self.s ^ p_x2
        k2 = (2 * int(np.count_nonzero(q_z2 & self.s))) % 4
        u = self.s ^ q_x2
        self.w = self.w * _SQRT_HALF * (1j**k1)
        delta = (k2 - k1) % 4
        if np.array_equal(t, u):
            self.w = self.w * (1 + 1j**delta)
            self.s = t
            if abs(self.w) < 1e-14:
                self.w = 0.0
            return
        self._desuperpose(t, u, delta)

    def _desuperpose(self, t: np.ndarray, u: np.ndarray, delta: int) -> None:
        """Rewrite ``U_H (|t> + i^delta |u>)`` in canonical form (t != u)."""
        diff = t ^ u
        diff_v0 = diff & ~self.v
        if diff_v0.any():
            self._desuperpose_with_bare_pivot(t, u, delta, diff, diff_v0)
        else:
            self._desuperpose_all_hadamard(t, delta, diff)

    def _desuperpose_with_bare_pivot(self, t, u, delta, diff, diff_v0) -> None:
        """Case A: pivot q* with v[q*] = 0.

        Under the kets apply W = prod_{r in D, r != q*} CX(q*, r), which
        commutes through U_H as CX (v_r=0) or CZ (v_r=1) — both C-type.
        After W the two kets differ only at q*.
        """
        pivot = int(np.flatnonzero(diff_v0)[0])
        tab = self.tableau
        for r in np.flatnonzero(diff):
            r = int(r)
            if r == pivot:
                continue
            if self.v[r]:
                tab.right_cz(pivot, r)
            else:
                tab.right_cx(pivot, r)
        # After W the kets agree outside the pivot, with the common bits
        # taken from whichever ket had pivot bit 0 (W leaves it untouched).
        # The pivot factor keeps coefficient 1 on that ket's pivot bit:
        #   t[pivot] == 0:  |0> + i^delta |1>
        #   t[pivot] == 1:  |1> + i^delta |0> = i^delta (|0> + i^{-delta} |1>)
        if t[pivot]:
            new_s = u.copy()
            self.w = self.w * (1j**delta)
            eps = (-delta) % 4
        else:
            new_s = t.copy()
            eps = delta % 4
        # |0> + i^eps |1> = sqrt2 * S^(eps odd) H |eps >= 2>
        if eps % 2 == 1:
            tab.right_s(pivot)
        new_s[pivot] = eps in (2, 3)
        self.v[pivot] = True
        self.s = new_s
        self.w = self.w * math.sqrt(2.0)

    def _desuperpose_all_hadamard(self, t, delta, diff) -> None:
        """Case B: every differing qubit is under a Hadamard.

        On D the state is ``H^D (|t_D> + i^delta |not t_D>)``, a phased
        parity state over D:

        * delta even: support on parity delta/2, built with a CX fan into a
          bare pivot;
        * delta odd: full support with phases (-/+ i)^{parity}, realised by
          S^{-/+1} on D and CZ on all pairs of D.
        """
        tab = self.tableau
        d_qubits = [int(r) for r in np.flatnonzero(diff)]
        # (-1)^{t.x} phase pattern: Z^{t_D} on the left of everything
        for r in d_qubits:
            if t[r]:
                tab.right_z(r)
        new_s = t.copy()
        if delta % 2 == 0:
            pivot = d_qubits[0]
            for r in d_qubits[1:]:
                tab.right_cx(r, pivot)
            self.v[pivot] = False
            new_s[pivot] = delta == 2
            for r in d_qubits[1:]:
                new_s[r] = False
            # scalar: (2/sqrt(2^d)) * sqrt(2^{d-1}) = sqrt2 ; with the
            # earlier 1/sqrt2 from H the weight is unchanged
            self.w = self.w * math.sqrt(2.0)
        else:
            # bracket = (1 + i^delta (-1)^parity) = (1 +- i) * (-+ i)^parity
            for r in d_qubits:
                if delta == 1:
                    tab.right_sdg(r)
                else:
                    tab.right_s(r)
            for i, a in enumerate(d_qubits):
                for b in d_qubits[i + 1 :]:
                    tab.right_cz(a, b)
            for r in d_qubits:
                new_s[r] = False
            scalar = (1 + 1j) if delta == 1 else (1 - 1j)
            self.w = self.w * scalar
        self.s = new_s

    def apply_x(self, q: int) -> None:
        """Pauli X via X = H Z H would churn; route through the tableau.

        ``X_q U_C = U_C (U_C^dag X_q U_C)``, then push the Pauli through
        U_H onto |s>.
        """
        if self.is_zero():
            return
        tab = self.tableau
        phase = int(tab.fwd_g[q])
        x = tab.fwd_x[q].copy()
        z = tab.fwd_z[q].copy()
        phase = (phase + 2 * int(np.count_nonzero(self.v & x & z))) % 4
        x2 = np.where(self.v, z, x)
        z2 = np.where(self.v, x, z)
        phase = (phase + 2 * int(np.count_nonzero(z2 & self.s))) % 4
        self.s = self.s ^ x2
        self.w = self.w * (1j**phase)

    def apply_z(self, q: int) -> None:
        self.apply_s(q)
        self.apply_s(q)

    def apply_gate(self, gate, qubits: tuple[int, ...]) -> None:
        name = gate.name
        if name == "S":
            self.apply_s(qubits[0])
        elif name == "SDG":
            self.apply_sdg(qubits[0])
        elif name == "H":
            self.apply_h(qubits[0])
        elif name == "CZ":
            self.apply_cz(*qubits)
        elif name == "CX":
            self.apply_cx(*qubits)
        elif name == "X":
            self.apply_x(qubits[0])
        elif name == "Z":
            self.apply_z(qubits[0])
        elif name == "Y":
            # Y = i X Z exactly; the {H,S,CX} decomposition only recovers
            # Y up to global phase, which the CH form must not lose
            self.apply_z(qubits[0])
            self.apply_x(qubits[0])
            self.w = self.w * 1j
        else:
            for sub_name, wires in gate.stabilizer_decomposition():
                sub = tuple(qubits[w] for w in wires)
                if sub_name == "H":
                    self.apply_h(sub[0])
                elif sub_name == "S":
                    self.apply_s(sub[0])
                else:
                    self.apply_cx(*sub)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.n_qubits != self.n:
            raise ValueError("circuit width does not match state")
        for op in circuit.ops:
            if not op.gate.is_clifford:
                raise ValueError(f"{op.gate!r} is not Clifford")
            self.apply_gate(op.gate, op.qubits)

    # -- readout -------------------------------------------------------------

    def amplitude(self, bits: np.ndarray) -> complex:
        """Exact ``<bits|phi>`` in O(n^2)."""
        if self.is_zero():
            return 0.0
        bits = np.asarray(bits, dtype=bool)
        # <x| U_C = (U_C^dag |x>)^dag = (i^k |a>)^dag
        k, a = self.tableau.apply_inverse_to_basis_state(bits)
        # <a| U_H |s> — zero unless a == s on bare qubits
        bare = ~self.v
        if np.any((a ^ self.s) & bare):
            return 0.0
        sign_exp = int(np.count_nonzero(a & self.s & self.v))
        n_h = int(np.count_nonzero(self.v))
        value = (-1.0) ** sign_exp * 2.0 ** (-n_h / 2)
        return self.w * (1j ** ((-k) % 4)) * value

    def amplitudes(self, bits_matrix: np.ndarray) -> np.ndarray:
        """Batched ``<x|phi>`` over a ``(B, n)`` bit matrix; ``(B,)`` complex.

        The batch twin of :meth:`amplitude`: one call replaces ``B`` scalar
        queries, so sampled- and enumerated-mode readout cost a few matmuls
        instead of ``B`` Python round trips.
        """
        bits = np.asarray(bits_matrix, dtype=bool)
        if bits.ndim != 2:
            raise ValueError("amplitudes expects a (batch, n) bit matrix")
        if self.is_zero():
            return np.zeros(bits.shape[0], dtype=complex)
        k, a = self.tableau.apply_inverse_to_basis_states(bits)
        bare = ~self.v
        dead = ((a ^ self.s) & bare).any(axis=1)
        sign_exp = np.count_nonzero(a & self.s & self.v, axis=1)
        n_h = int(np.count_nonzero(self.v))
        value = np.where(dead, 0.0, (-1.0) ** sign_exp * 2.0 ** (-n_h / 2))
        return self.w * (1j ** ((-k) % 4)) * value

    def to_statevector(self) -> np.ndarray:
        """Dense amplitudes (tests / small n only)."""
        from repro.analysis.distributions import enumerated_bit_rows

        if self.n > 12:
            raise ValueError("to_statevector limited to 12 qubits")
        return self.amplitudes(enumerated_bit_rows(self.n))

    def norm_squared(self) -> float:
        """Always 1 for a non-zero CH form (or 0); useful as an invariant."""
        return 0.0 if self.is_zero() else abs(self.w) ** 2
