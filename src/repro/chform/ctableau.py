"""Phase-exact tableau for control-type Cliffords.

A *C-type* Clifford ``U`` is a product of S, CZ and CX gates.  Such
operators fix ``|0...0>`` exactly (phase included), map computational basis
states to computational basis states up to a power of ``i``, and keep
``U^dag Z_p U`` and ``U Z_p U^dag`` purely Z-type.  This class tracks both
conjugation directions exactly:

* forward:  ``U^dag X_p U = i^fwd_g[p] X^fwd_x[p] Z^fwd_z[p]``,
  ``U^dag Z_p U = Z^fwd_zz[p]``
* inverse:  ``U X_p U^dag = i^inv_g[p] X^inv_x[p] Z^inv_z[p]``,
  ``U Z_p U^dag = Z^inv_zz[p]``

Phases here are *raw*: the operator is literally the ordered product
``i^g * prod_q X_q^x * prod_q Z_q^z`` (all X factors left of all Z factors).

Gate composition costs O(n) per elementary gate.
"""

from __future__ import annotations

import numpy as np


class CTypeTableau:
    """The identity-initialised tableau of a C-type Clifford on n qubits."""

    def __init__(self, n: int):
        self.n = int(n)
        eye = np.eye(n, dtype=bool)
        self.fwd_x = eye.copy()
        self.fwd_z = np.zeros((n, n), dtype=bool)
        self.fwd_g = np.zeros(n, dtype=np.int64)
        self.fwd_zz = eye.copy()
        self.inv_x = eye.copy()
        self.inv_z = np.zeros((n, n), dtype=bool)
        self.inv_g = np.zeros(n, dtype=np.int64)
        self.inv_zz = eye.copy()

    def copy(self) -> "CTypeTableau":
        out = CTypeTableau.__new__(CTypeTableau)
        out.n = self.n
        for field in ("fwd_x", "fwd_z", "fwd_g", "fwd_zz",
                      "inv_x", "inv_z", "inv_g", "inv_zz"):
            setattr(out, field, getattr(self, field).copy())
        return out

    # -- raw-form Pauli composition helpers -------------------------------

    def _compose_x_rows(self, side: str, p: int, q: int, extra_phase: int) -> None:
        """Row_p <- i^extra * Row_p * Row_q on X-image rows of ``side``."""
        x = getattr(self, side + "_x")
        z = getattr(self, side + "_z")
        g = getattr(self, side + "_g")
        # (i^g1 X^x1 Z^z1)(i^g2 X^x2 Z^z2) = i^{g1+g2+2 z1.x2} X^{x1^x2} Z^{z1^z2}
        cross = int(np.count_nonzero(z[p] & x[q]))
        g[p] = (g[p] + g[q] + 2 * cross + extra_phase) % 4
        x[p] ^= x[q]
        z[p] ^= z[q]

    def _mix_x_with_z(self, side: str, p: int, q: int, extra_phase: int) -> None:
        """Row_p <- i^extra * Row_p * Z-image-row_q (Z rows have no phase)."""
        z = getattr(self, side + "_z")
        g = getattr(self, side + "_g")
        zz = getattr(self, side + "_zz")
        # multiplying by a pure-Z operator on the right: no cross sign
        g[p] = (g[p] + extra_phase) % 4
        z[p] ^= zz[q]

    # -- left multiplication: U <- g U --------------------------------------
    # forward: P -> U^dag (g^dag P g) U   (rewrite rows p on the gate's qubits)
    # inverse: P -> g (U P U^dag) g^dag   (conjugate all rows by g)

    def left_s(self, q: int) -> None:
        # forward rewrite: Sdg X S = -Y = i^3 X Z ;  Sdg Z S = Z
        # inverse rows conjugate as S Row Sdg
        self._mix_x_with_z("fwd", q, q, extra_phase=3)
        self._conjugate_all_by_s("inv", q, dagger=True)

    def left_sdg(self, q: int) -> None:
        # forward rewrite: S X Sdg = Y = i X Z ; inverse rows: Sdg Row S
        self._mix_x_with_z("fwd", q, q, extra_phase=1)
        self._conjugate_all_by_s("inv", q, dagger=False)

    def left_cz(self, a: int, b: int) -> None:
        # CZ X_a CZ = X_a Z_b ; CZ X_b CZ = Z_a X_b ; Z fixed
        self._mix_x_with_z("fwd", a, b, extra_phase=0)
        self._mix_x_with_z("fwd", b, a, extra_phase=0)
        self._conjugate_all_by_cz("inv", a, b)

    def left_cx(self, c: int, t: int) -> None:
        # CX X_c CX = X_c X_t ; X_t fixed ; Z_c fixed ; CX Z_t CX = Z_c Z_t
        self._compose_x_rows("fwd", c, t, extra_phase=0)
        self.fwd_zz[t] ^= self.fwd_zz[c]
        self._conjugate_all_by_cx("inv", c, t)

    # -- right multiplication: U <- U g --------------------------------------
    # forward: P -> g^dag (U^dag P U) g   (conjugate all rows by g^dag)
    # inverse: P -> U (g P g^dag) U^dag   (rewrite rows p on the gate's qubits)

    def right_s(self, q: int) -> None:
        # forward rows conjugate as Sdg Row S ; inverse rewrite: S X Sdg = i X Z
        self._conjugate_all_by_s("fwd", q, dagger=False)
        self._mix_x_with_z("inv", q, q, extra_phase=1)

    def right_sdg(self, q: int) -> None:
        self._conjugate_all_by_s("fwd", q, dagger=True)
        self._mix_x_with_z("inv", q, q, extra_phase=3)

    def right_z(self, q: int) -> None:
        self.right_s(q)
        self.right_s(q)

    def right_cz(self, a: int, b: int) -> None:
        self._conjugate_all_by_cz("fwd", a, b)
        self._mix_x_with_z("inv", a, b, extra_phase=0)
        self._mix_x_with_z("inv", b, a, extra_phase=0)

    def right_cx(self, c: int, t: int) -> None:
        self._conjugate_all_by_cx("fwd", c, t)
        self._compose_x_rows("inv", c, t, extra_phase=0)
        self.inv_zz[t] ^= self.inv_zz[c]

    # -- conjugate every row of one side by a local gate -----------------------

    def _conjugate_all_by_s(self, side: str, q: int, dagger: bool) -> None:
        """Rows -> S Row Sdg (dagger=True) or Sdg Row S (dagger=False).

        In raw form: X_q -> i^{+-1} X_q Z_q, so rows with an X at q toggle
        their Z bit at q and shift phase.  Z-image rows are untouched.
        """
        x = getattr(self, side + "_x")
        z = getattr(self, side + "_z")
        g = getattr(self, side + "_g")
        mask = x[:, q]
        shift = 1 if dagger else 3
        g[mask] = (g[mask] + shift) % 4
        z[mask, q] ^= True

    def _conjugate_all_by_cz(self, side: str, a: int, b: int) -> None:
        """Rows -> CZ Row CZ.

        X_a -> X_a Z_b and X_b -> Z_a X_b; reordering the raw product gives
        an extra (-1) when both X bits are present.
        """
        x = getattr(self, side + "_x")
        z = getattr(self, side + "_z")
        g = getattr(self, side + "_g")
        both = x[:, a] & x[:, b]
        g[both] = (g[both] + 2) % 4
        z[:, b] ^= x[:, a]
        z[:, a] ^= x[:, b]

    def _conjugate_all_by_cx(self, side: str, c: int, t: int) -> None:
        """Rows -> CX Row CX: x_t ^= x_c, z_c ^= z_t, no phase in raw form."""
        x = getattr(self, side + "_x")
        z = getattr(self, side + "_z")
        x[:, t] ^= x[:, c]
        z[:, c] ^= z[:, t]
        zz = getattr(self, side + "_zz")
        zz[:, c] ^= zz[:, t]

    # -- basis-state action ------------------------------------------------------

    def _image_of_x_string(self, side: str, bits: np.ndarray):
        """Raw-form image of ``X^bits`` under the chosen direction.

        Returns ``(phase, x, z)`` with the operator ``i^phase X^x Z^z``.
        """
        x = getattr(self, side + "_x")
        z = getattr(self, side + "_z")
        g = getattr(self, side + "_g")
        rows = np.flatnonzero(bits)
        acc_x = np.zeros(self.n, dtype=bool)
        acc_z = np.zeros(self.n, dtype=bool)
        phase = 0
        for p in rows:
            cross = int(np.count_nonzero(acc_z & x[p]))
            phase = (phase + int(g[p]) + 2 * cross) % 4
            acc_x ^= x[p]
            acc_z ^= z[p]
        return phase, acc_x, acc_z

    def apply_inverse_to_basis_state(self, bits: np.ndarray):
        """``U^dag |bits> = i^k |out>`` — returns ``(k, out)``.

        Uses ``U^dag |x> = (U^dag X^x U) U^dag |0> = fwd(X^x) |0>``.
        """
        phase, x, _z = self._image_of_x_string("fwd", np.asarray(bits, dtype=bool))
        return phase, x

    def apply_to_basis_state(self, bits: np.ndarray):
        """``U |bits> = i^k |out>`` — returns ``(k, out)``."""
        phase, x, _z = self._image_of_x_string("inv", np.asarray(bits, dtype=bool))
        return phase, x

    def apply_inverse_to_basis_states(self, bits_matrix: np.ndarray):
        """Batched :meth:`apply_inverse_to_basis_state` over ``(B, n)`` rows.

        Returns ``(k, out)`` with ``k`` an ``(B,)`` phase array and ``out``
        a ``(B, n)`` bool matrix.  The sequential row-product of the scalar
        path collapses into three matmuls: the X/Z images are GF(2) matrix
        products, and the accumulated cross-phase — the parity of
        ``|acc_z(<p) & x_p|`` summed over selected rows ``p`` — is the
        quadratic form ``b^T triu(M, 1) b`` with ``M = (z x^T) mod 2``.
        """
        bits = np.asarray(bits_matrix, dtype=bool)
        selected = bits.astype(np.uint8)
        x = self.fwd_x.astype(np.uint8)
        z = self.fwd_z.astype(np.uint8)
        out = ((selected @ x) % 2).astype(bool)
        linear = selected @ self.fwd_g
        cross = np.triu((z @ x.T) % 2, k=1)
        quad = np.einsum("bp,bp->b", selected @ cross, selected) % 2
        phase = (linear + 2 * quad.astype(np.int64)) % 4
        return phase, out

    # -- dense matrix (tests only) --------------------------------------------

    def to_matrix(self) -> np.ndarray:
        if self.n > 10:
            raise ValueError("to_matrix limited to 10 qubits")
        dim = 2**self.n
        out = np.zeros((dim, dim), dtype=complex)
        for col in range(dim):
            bits = np.array(
                [(col >> (self.n - 1 - i)) & 1 for i in range(self.n)], dtype=bool
            )
            phase, image = self.apply_to_basis_state(bits)
            row = 0
            for bit in image:
                row = (row << 1) | int(bit)
            out[row, col] = 1j**phase
        return out
