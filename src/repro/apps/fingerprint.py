"""SupercheQ-style incremental fingerprinting (paper §IV-D).

SupercheQ's Incremental Encoding (IE) maps a classical file to a stabilizer
state: every appended bit applies one of two pseudo-random Clifford layers.
Equality of two files is then (probabilistically) certified by comparing the
resulting stabilizer states — which the tableau simulator does exactly via
canonical stabilizer generators.  Because the encoding is Clifford, updates
are incremental; enriching it with a few non-Clifford gates (the
"middle-ground" the paper proposes to study with SuperSim) is supported via
``near_clifford_fingerprint``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.circuits.random import inject_t_gates
from repro.paulis.pauli import PauliString
from repro.stabilizer.simulator import StabilizerSimulator
from repro.stabilizer.tableau import Tableau


def _bit_layer(circuit: Circuit, bit: int, rng: np.random.Generator) -> None:
    """Append the pseudo-random Clifford layer encoding one bit."""
    n = circuit.n_qubits
    pool = (gates.H, gates.S, gates.SX)
    for q in range(n):
        gate = pool[int(rng.integers(len(pool)))]
        circuit.append(gate, q)
        if bit:
            circuit.append(gates.Z, q)
    offset = int(rng.integers(n))
    for q in range(n):
        other = (q + 1 + offset) % n
        if other != q and (q + bit) % 2 == 0:
            circuit.append(gates.CX, q, other)


def fingerprint_circuit(bits, n_qubits: int, seed: int = 0) -> Circuit:
    """Encode a bit sequence into an ``n_qubits`` stabilizer fingerprint.

    The per-position Clifford layers are derived from ``seed`` alone, so two
    parties encoding the same file with the same seed build the same state.
    """
    circuit = Circuit(n_qubits)
    for position, bit in enumerate(bits):
        layer_rng = np.random.default_rng((seed, position))
        _bit_layer(circuit, int(bit), layer_rng)
    return circuit


def incremental_update(circuit: Circuit, bit: int, seed: int = 0) -> Circuit:
    """Append one more bit to an existing fingerprint circuit — O(n) gates.

    This is the *incrementality* advantage of SupercheQ-IE: extending the
    file does not require re-encoding it.
    """
    position = _position_of(circuit)
    out = circuit.copy()
    layer_rng = np.random.default_rng((seed, position))
    _bit_layer(out, int(bit), layer_rng)
    return out


def _position_of(circuit: Circuit) -> int:
    """Recover how many bits a fingerprint circuit encodes (via op markers).

    Each bit layer appends at least ``n`` one-qubit gates; we track layer
    count in metadata-free form by counting H/S/SX on qubit 0.
    """
    return sum(
        1
        for op in circuit.ops
        if op.qubits == (0,) and op.gate.name in ("H", "S", "SX")
    )


def canonical_stabilizers(tableau: Tableau) -> tuple:
    """A canonical form of the stabilizer group (for state comparison).

    Full Gauss–Jordan elimination of the generators over ``F_2^{2n}``
    (columns ordered ``x_0..x_{n-1}, z_0..z_{n-1}``), with signs carried by
    exact Pauli multiplication.  The reduced row echelon form of a row space
    is unique, so two stabilizer states are equal iff these generator
    tuples are equal.
    """
    n = tableau.n
    work: list[PauliString] = [
        tableau._row_pauli(tableau.n + i) for i in range(n)
    ]
    reduced: list[PauliString] = []

    def bit(p: PauliString, column: int) -> bool:
        return bool(p.x[column]) if column < n else bool(p.z[column - n])

    for column in range(2 * n):
        pivot = next((i for i, p in enumerate(work) if bit(p, column)), None)
        if pivot is None:
            continue
        pivot_row = work.pop(pivot)
        work = [p * pivot_row if bit(p, column) else p for p in work]
        reduced = [p * pivot_row if bit(p, column) else p for p in reduced]
        reduced.append(pivot_row)
    return tuple((p.label(), p.phase) for p in reduced)


def fingerprints_equal(a: Circuit, b: Circuit) -> bool:
    """Exact stabilizer-state equality of two fingerprint circuits."""
    if a.n_qubits != b.n_qubits:
        return False
    sim = StabilizerSimulator()
    return canonical_stabilizers(sim.run(a)) == canonical_stabilizers(sim.run(b))


def near_clifford_fingerprint(
    bits, n_qubits: int, num_t: int = 1, seed: int = 0
) -> Circuit:
    """Fingerprint enriched with T gates (the SupercheQ middle ground)."""
    base = fingerprint_circuit(bits, n_qubits, seed)
    return inject_t_gates(base, num_t, rng=seed)
