"""Benchmark applications from the paper's §IV.

* :mod:`repro.apps.hwea` — the hardware-efficient VQE ansatz (near-CAFQA);
* :mod:`repro.apps.qaoa` — QAOA for Sherrington–Kirkpatrick MaxCut;
* :mod:`repro.apps.qec` — the phase-flip repetition code (SupermarQ-style);
* :mod:`repro.apps.vqe` — Hamiltonians, Pauli expectations, and the
  CAFQA-style discrete Clifford parameter search;
* :mod:`repro.apps.fingerprint` — SupercheQ-IE incremental fingerprinting.
"""

from repro.apps.hwea import HWEA
from repro.apps.qaoa import (
    clifford_qaoa_circuit,
    maxcut_value,
    qaoa_circuit,
    sk_model,
)
from repro.apps.qec import (
    logical_phase_error_rate,
    phase_flip_repetition_code,
)
from repro.apps.vqe import (
    Hamiltonian,
    cafqa_search,
    pauli_expectation,
    transverse_field_ising,
)
from repro.apps.fingerprint import (
    fingerprint_circuit,
    fingerprints_equal,
    incremental_update,
)
from repro.apps.generative import (
    BornMachine,
    refine_near_clifford,
    train_clifford,
)
from repro.apps.qec_matching import (
    bit_flip_repetition_code,
    logical_bit_flip_error_rate,
)

__all__ = [
    "HWEA",
    "sk_model",
    "qaoa_circuit",
    "clifford_qaoa_circuit",
    "maxcut_value",
    "phase_flip_repetition_code",
    "logical_phase_error_rate",
    "Hamiltonian",
    "transverse_field_ising",
    "pauli_expectation",
    "cafqa_search",
    "fingerprint_circuit",
    "incremental_update",
    "fingerprints_equal",
    "BornMachine",
    "train_clifford",
    "refine_near_clifford",
    "bit_flip_repetition_code",
    "logical_bit_flip_error_rate",
]
