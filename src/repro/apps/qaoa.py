"""QAOA for Sherrington–Kirkpatrick MaxCut (paper §IV-B, §VI-B).

The SK model puts a random +-1 coupling on every edge of the complete graph;
the QAOA ansatz matches the model exactly, so each round needs all-to-all
two-qubit connectivity — the property that makes this benchmark hard for
MPS simulators (long-range gates -> SWAP routing -> entanglement growth)
and easy for SuperSim once the single injected T gate is cut out.

Angle conventions: the cost layer applies ``exp(-i gamma w_ij Z_i Z_j)`` and
the mixer ``exp(-i beta X_q)``; in ZPow-exponent units ("turns of pi")
``t_cost = 2 gamma w / pi`` and ``t_mix = 2 beta / pi``, so Clifford points
are gamma, beta in multiples of pi/4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.circuits.random import inject_t_gates


def sk_model(
    n: int, rng: np.random.Generator | int | None = None
) -> dict[tuple[int, int], int]:
    """Random +-1 couplings on the complete graph over ``n`` vertices."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    couplings: dict[tuple[int, int], int] = {}
    for i in range(n):
        for j in range(i + 1, n):
            couplings[(i, j)] = int(rng.choice([-1, 1]))
    return couplings


def qaoa_circuit(
    n: int,
    couplings: dict[tuple[int, int], int],
    gammas,
    betas,
) -> Circuit:
    """QAOA ansatz with one cost+mixer round per (gamma, beta) pair."""
    gammas = np.atleast_1d(np.asarray(gammas, dtype=float))
    betas = np.atleast_1d(np.asarray(betas, dtype=float))
    if gammas.shape != betas.shape:
        raise ValueError("gamma and beta lists must have equal length")
    circuit = Circuit(n)
    for q in range(n):
        circuit.append(gates.H, q)
    for gamma, beta in zip(gammas, betas):
        for (i, j), weight in couplings.items():
            t = 2.0 * gamma * weight / math.pi
            if t % 2.0 != 0.0:
                circuit.append(gates.ZZPow(t), i, j)
        for q in range(n):
            t = 2.0 * beta / math.pi
            if t % 2.0 != 0.0:
                circuit.append(gates.XPow(t), q)
    return circuit


def clifford_qaoa_circuit(
    n: int,
    couplings: dict[tuple[int, int], int],
    gamma_steps: int = 1,
    beta_steps: int = 1,
    rounds: int = 1,
) -> Circuit:
    """QAOA at a Clifford point: angles are ``steps * pi/4``."""
    gamma = gamma_steps * math.pi / 4
    beta = beta_steps * math.pi / 4
    return qaoa_circuit(n, couplings, [gamma] * rounds, [beta] * rounds)


def near_clifford_qaoa(
    n: int,
    rounds: int = 1,
    num_t: int = 1,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """The paper's Fig. 6 benchmark: 1-round Clifford QAOA + injected T."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    couplings = sk_model(n, rng)
    gamma_steps = int(rng.integers(1, 4))
    beta_steps = int(rng.integers(1, 4))
    base = clifford_qaoa_circuit(n, couplings, gamma_steps, beta_steps, rounds)
    return inject_t_gates(base, num_t, rng)


def maxcut_value(couplings: dict[tuple[int, int], int], bits) -> float:
    """Cut value of an assignment: sum of weights of crossing edges."""
    bits = list(bits)
    return float(
        sum(w for (i, j), w in couplings.items() if bits[i] != bits[j])
    )


def expected_cut(couplings: dict[tuple[int, int], int], distribution) -> float:
    """Expected cut value under an outcome distribution over all vertices.

    One vectorised pass over the distribution's support: the packed keys
    expand to a bit matrix once, and every edge's crossing indicator is a
    column comparison — no per-outcome Python loop.
    """
    bits = distribution.bit_matrix()
    probs = distribution.values_array
    edges = list(couplings.items())
    left = bits[:, [i for (i, _j), _w in edges]]
    right = bits[:, [j for (_i, j), _w in edges]]
    weights = np.array([w for _e, w in edges], dtype=np.float64)
    return float(probs @ ((left != right) @ weights))


def expected_cut_from_correlations(
    couplings: dict[tuple[int, int], int],
    circuit: Circuit,
    backend=None,
) -> float:
    """``E[cut] = sum_ij w_ij (1 - <Z_i Z_j>)/2`` via narrow reconstructions.

    Scales to widths where the full output distribution is out of reach:
    each edge needs only a two-qubit marginal, so a SuperSim scorer keeps
    every reconstruction narrow regardless of circuit width.  ``backend``
    is anything :func:`repro.apps.vqe.as_scorer` accepts (default: an
    exact ``SuperSim()``); pass an :class:`~repro.core.config.ExecutionConfig`
    / :class:`~repro.core.config.SamplingConfig` to control evaluation.
    """
    from repro.apps.vqe import as_scorer, pauli_expectation
    from repro.paulis.pauli import PauliString

    if backend is None:
        from repro.core.supersim import SuperSim

        backend = SuperSim()
    else:
        backend = as_scorer(backend)
    n = circuit.n_qubits
    total = 0.0
    for (i, j), w in couplings.items():
        label = "".join("Z" if q in (i, j) else "I" for q in range(n))
        zz = pauli_expectation(circuit, PauliString.from_label(label), backend)
        total += w * (1 - zz) / 2
    return total


def expected_cut_from_marginals(
    couplings: dict[tuple[int, int], int],
    circuit: Circuit,
    sim=None,
) -> float:
    """Exact ``E[cut]`` from two-qubit windowed marginals, one pass.

    Each edge ``(i, j)`` only needs ``P(b_i != b_j)``, and
    :meth:`~repro.core.supersim.SuperSim.marginal_probabilities`
    reconstructs every edge's two-qubit marginal from a *single*
    fragment-evaluation pass — unlike
    :func:`expected_cut_from_correlations`, which re-runs the pipeline
    per edge.  Cost scales with edges x 4-entry windows, never
    ``2**n``, so this is the QAOA scorer for wide cut circuits.
    """
    if sim is None:
        from repro.core.supersim import SuperSim

        sim = SuperSim()
    edges = list(couplings.items())
    marginals = sim.marginal_probabilities(
        circuit, [(i, j) for (i, j), _w in edges]
    )
    total = 0.0
    for ((_i, _j), w), dist in zip(edges, marginals):
        total += w * (dist[0b01] + dist[0b10])
    return total


def expected_cut_from_samples(
    couplings: dict[tuple[int, int], int],
    bit_batches,
    n_qubits: int,
) -> float:
    """Streaming ``E[cut]`` over batches of sampled outcome bits.

    ``bit_batches`` yields ``(shots, n_qubits)`` bool matrices (chunks of
    a sampler's output, per-variant shot matrices, ...).  Batches fold
    into per-edge two-bit marginals via
    :class:`repro.analysis.StreamingAccumulator`, so memory stays at four
    floats per edge regardless of total shots or width.
    """
    from repro.analysis import StreamingAccumulator

    edges = list(couplings.items())
    accumulator = StreamingAccumulator(
        n_qubits, marginals=[(i, j) for (i, j), _w in edges]
    )
    for batch in bit_batches:
        accumulator.update(bits=batch)
    total = 0.0
    for (i, j), w in edges:
        marginal = accumulator.marginal((i, j))
        total += w * (marginal[0b01] + marginal[0b10])
    return total
