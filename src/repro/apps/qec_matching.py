"""Bit-flip repetition code with multi-round syndromes and matching decoding.

The paper's §XII roadmap calls for benchmarks beyond the single-round phase
code — codes "that also correct bit-flip errors" with repeated syndrome
extraction.  This module provides that workload within the terminal-
measurement circuit model: each syndrome round uses *fresh* ancilla qubits
(no mid-circuit measurement needed), and the decoder performs minimum-weight
matching of space-time syndrome defects via networkx.

Qubit layout for distance ``d`` with ``r`` rounds:

* data qubits ``0 .. d-1``;
* round ``k`` ancillas ``d + k*(d-1) .. d + (k+1)*(d-1) - 1``; ancilla ``i``
  of a round measures ``Z_i Z_{i+1}``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.stabilizer.frames import FrameSampler
from repro.stabilizer.noise import NoiseModel, PauliChannel


def bit_flip_repetition_code(distance: int, rounds: int = 1) -> Circuit:
    """``rounds`` rounds of Z x Z parity extraction on a distance-``d`` code."""
    if distance < 2 or rounds < 1:
        raise ValueError("need distance >= 2 and rounds >= 1")
    d = distance
    n = d + rounds * (d - 1)
    circuit = Circuit(n)
    for k in range(rounds):
        base = d + k * (d - 1)
        for i in range(d - 1):
            ancilla = base + i
            circuit.append(gates.CX, i, ancilla)
            circuit.append(gates.CX, i + 1, ancilla)
    circuit.measure_all()
    return circuit


def syndrome_defects(bits, distance: int, rounds: int) -> list[tuple[int, int]]:
    """Space-time defects: (round, position) where the syndrome *changes*.

    A defect at round 0 is a fired ancilla; at later rounds, a difference
    from the previous round's value.  A virtual final round computed from
    the data readout terminates error chains.
    """
    d = distance
    bits = list(bits)
    data = bits[:d]
    syndromes = []
    for k in range(rounds):
        base = d + k * (d - 1)
        syndromes.append(bits[base : base + d - 1])
    # final round derived from the data measurement itself
    syndromes.append([data[i] ^ data[i + 1] for i in range(d - 1)])
    defects = []
    previous = [0] * (d - 1)
    for k, row in enumerate(syndromes):
        for i in range(d - 1):
            if row[i] ^ previous[i]:
                defects.append((k, i))
        previous = row
    return defects


def match_defects(
    defects: list[tuple[int, int]], distance: int
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Minimum-weight matching of defects (boundaries included).

    Each defect either pairs with another defect (cost = space-time L1
    distance) or with the nearest code boundary (cost = distance to it).
    Implemented as max-weight matching on negated costs via networkx.
    """
    if not defects:
        return []
    graph = nx.Graph()
    big = 10 * (distance + len(defects))
    for a_idx, a in enumerate(defects):
        for b_idx in range(a_idx + 1, len(defects)):
            b = defects[b_idx]
            cost = abs(a[0] - b[0]) + abs(a[1] - b[1])
            graph.add_edge(("d", a_idx), ("d", b_idx), weight=big - cost)
        boundary_cost = min(a[1] + 1, distance - 1 - a[1])
        graph.add_edge(("d", a_idx), ("b", a_idx), weight=big - boundary_cost)
        # boundary nodes can pair among themselves for free
    for a_idx in range(len(defects)):
        for b_idx in range(a_idx + 1, len(defects)):
            graph.add_edge(("b", a_idx), ("b", b_idx), weight=big)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    pairs = []
    for u, v in matching:
        if u[0] == "d" and v[0] == "d":
            pairs.append((defects[u[1]], defects[v[1]]))
        elif u[0] == "d":
            pairs.append((defects[u[1]], ("boundary", defects[u[1]])))
        elif v[0] == "d":
            pairs.append((defects[v[1]], ("boundary", defects[v[1]])))
    return pairs


def decode_correction(
    defects: list[tuple[int, int]], distance: int
) -> np.ndarray:
    """Data-qubit correction mask implied by the matched defects."""
    correction = np.zeros(distance, dtype=bool)
    for a, b in match_defects(defects, distance):
        if isinstance(b[0], str):  # boundary match
            defect = a
            left_cost = defect[1] + 1
            right_cost = distance - 1 - defect[1]
            if left_cost <= right_cost:
                correction[: defect[1] + 1] ^= True
            else:
                correction[defect[1] + 1 :] ^= True
        else:
            lo, hi = sorted((a[1], b[1]))
            correction[lo + 1 : hi + 1] ^= True
    return correction


def logical_bit_flip_error_rate(
    distance: int,
    bit_flip_probability: float,
    rounds: int = 1,
    shots: int = 2000,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo logical X error rate with matching decoding.

    X noise is injected after every gate via Pauli frames; the encoded state
    is |0>_L, so a logical error is a decoded data word of majority 1.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    circuit = bit_flip_repetition_code(distance, rounds)
    noise = NoiseModel(
        after_gate_2q=PauliChannel(
            2,
            [
                (bit_flip_probability / 2, "XI"),
                (bit_flip_probability / 2, "IX"),
            ],
        ),
        before_measure=PauliChannel.bit_flip(bit_flip_probability),
    )
    sampler = FrameSampler(circuit, noise)
    bits = sampler.sample_bits(shots, rng)
    errors = 0
    for row in bits:
        defects = syndrome_defects(row, distance, rounds)
        correction = decode_correction(defects, distance)
        data = np.asarray(row[:distance], dtype=bool) ^ correction
        if int(data.sum()) > distance // 2:
            errors += 1
    return errors / shots
