"""The hardware-efficient VQE ansatz (HWEA) benchmark (paper §IV-B, §VI-B).

One HWEA round is a layer of parameterised single-qubit rotations, a layer
of entangling gates, and a final layer of single-qubit rotations.  In the
CAFQA setting the rotation angles are restricted to Clifford points
(multiples of pi/2, i.e. powers of S), making the whole ansatz a stabilizer
circuit; injecting a few T gates produces the near-Clifford circuits that
SuperSim targets ("near-CAFQA").
"""

from __future__ import annotations

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.circuits.random import inject_t_gates


class HWEA:
    """Hardware-efficient ansatz generator.

    Each round applies ``YPow(a_q) ZPow(b_q)`` on every qubit, a ladder of
    CX entanglers, then ``YPow(c_q) ZPow(d_q)``; parameters are exponents in
    "turns of pi" so the Clifford points are the multiples of 1/2.
    """

    def __init__(self, n_qubits: int, rounds: int):
        if n_qubits < 1 or rounds < 0:
            raise ValueError("need n_qubits >= 1 and rounds >= 0")
        self.n_qubits = n_qubits
        self.rounds = rounds

    @property
    def num_parameters(self) -> int:
        return self.rounds * 4 * self.n_qubits

    def circuit(self, parameters) -> Circuit:
        """Build the ansatz for exponent parameters (length num_parameters)."""
        parameters = np.asarray(parameters, dtype=float)
        if parameters.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {parameters.shape}"
            )
        circuit = Circuit(self.n_qubits)
        index = 0
        for _ in range(self.rounds):
            for q in range(self.n_qubits):
                self._rotation(circuit, q, parameters[index], parameters[index + 1])
                index += 2
            for q in range(self.n_qubits - 1):
                circuit.append(gates.CX, q, q + 1)
            for q in range(self.n_qubits):
                self._rotation(circuit, q, parameters[index], parameters[index + 1])
                index += 2
        return circuit

    @staticmethod
    def _rotation(circuit: Circuit, q: int, a: float, b: float) -> None:
        if a % 2.0 != 0.0:
            circuit.append(gates.YPow(a), q)
        if b % 2.0 != 0.0:
            circuit.append(gates.ZPow(b), q)

    def clifford_circuit(self, steps) -> Circuit:
        """Ansatz at a Clifford point: integer ``steps`` of pi/2 per parameter."""
        steps = np.asarray(steps, dtype=int)
        return self.circuit(steps * 0.5)

    def random_clifford_instance(
        self, rng: np.random.Generator | int | None = None
    ) -> Circuit:
        """Random Clifford-point parameters (CAFQA search space sample)."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        steps = rng.integers(0, 4, size=self.num_parameters)
        return self.clifford_circuit(steps)

    def near_clifford_instance(
        self,
        num_t: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> Circuit:
        """The paper's benchmark: Clifford HWEA with randomly injected T gates."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return inject_t_gates(self.random_clifford_instance(rng), num_t, rng)
