"""VQE machinery: Hamiltonians, Pauli expectations, CAFQA search (§IV-B).

CAFQA (the paper's reference [42]) initialises a VQA by searching over the
*Clifford points* of the ansatz parameter space, where every candidate can
be scored with cheap stabilizer simulation.  ``cafqa_search`` implements
that discrete coordinate-descent; ``pauli_expectation`` scores arbitrary
(near-Clifford) circuits through any backend that can produce output
distributions over a few qubits — including SuperSim, which is what enables
the paper's "near-CAFQA" extension (Clifford ansatz + a few T gates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.paulis.pauli import PauliString
from repro.stabilizer.simulator import StabilizerSimulator


@dataclass(frozen=True)
class Hamiltonian:
    """A weighted sum of Pauli strings: ``H = sum_k coeffs[k] * P_k``."""

    n_qubits: int
    terms: tuple[tuple[float, str], ...]

    def __post_init__(self):
        for _, label in self.terms:
            if len(label) != self.n_qubits:
                raise ValueError(f"term {label!r} has wrong width")

    def paulis(self) -> list[tuple[float, PauliString]]:
        return [(c, PauliString.from_label(l)) for c, l in self.terms]


def transverse_field_ising(n: int, j: float = 1.0, h: float = 1.0) -> Hamiltonian:
    """``H = -J sum Z_i Z_{i+1} - h sum X_i`` on a chain."""
    terms: list[tuple[float, str]] = []
    for i in range(n - 1):
        label = "".join("Z" if q in (i, i + 1) else "I" for q in range(n))
        terms.append((-j, label))
    for i in range(n):
        label = "".join("X" if q == i else "I" for q in range(n))
        terms.append((-h, label))
    return Hamiltonian(n, tuple(terms))


def h2_hamiltonian() -> Hamiltonian:
    """The textbook 2-qubit H2 Hamiltonian (STO-3G, 0.735 A, parity mapping)."""
    return Hamiltonian(
        2,
        (
            (-1.052373245772859, "II"),
            (0.39793742484318045, "ZI"),
            (-0.39793742484318045, "IZ"),
            (-0.01128010425623538, "ZZ"),
            (0.18093119978423156, "XX"),
        ),
    )


_BASIS_ROTATION = {"X": (gates.H,), "Y": (gates.SDG, gates.H), "Z": (), "I": ()}


def as_scorer(backend):
    """Coerce a backend spec into something that can score circuits.

    Accepts a registered backend name, a backend/simulator object, a
    :class:`~repro.core.supersim.SuperSim`, or the typed config objects of
    the pipeline API — an :class:`~repro.core.config.ExecutionConfig`, a
    :class:`~repro.core.config.SamplingConfig`, or an ``(execution,
    sampling)`` pair of them — which build a ``SuperSim``.  This is the
    single coercion point of the apps layer, replacing per-function loose
    kwargs.
    """
    from repro.core.config import ExecutionConfig, SamplingConfig
    from repro.core.supersim import SuperSim

    if isinstance(backend, ExecutionConfig):
        return SuperSim(execution=backend)
    if isinstance(backend, SamplingConfig):
        return SuperSim(sampling=backend)
    if isinstance(backend, tuple) and any(
        isinstance(c, (ExecutionConfig, SamplingConfig)) for c in backend
    ):
        if not all(
            isinstance(c, (ExecutionConfig, SamplingConfig)) for c in backend
        ):
            raise TypeError(
                "a config tuple must contain only ExecutionConfig/"
                f"SamplingConfig objects, got {backend!r}"
            )
        executions = [c for c in backend if isinstance(c, ExecutionConfig)]
        samplings = [c for c in backend if isinstance(c, SamplingConfig)]
        if len(executions) > 1 or len(samplings) > 1:
            raise TypeError(
                "config tuple may hold at most one ExecutionConfig and "
                "one SamplingConfig"
            )
        return SuperSim(
            sampling=samplings[0] if samplings else None,
            execution=executions[0] if executions else None,
        )
    if isinstance(backend, str):
        from repro.backends import get_backend

        return get_backend(backend)
    return backend


def pauli_expectation(circuit: Circuit, pauli: PauliString, backend) -> float:
    """``<P>`` of the circuit's output state through a distribution backend.

    ``backend`` is anything :func:`as_scorer` accepts — a registered
    backend name (``"statevector"``, ``"mps"``, ...), anything with a
    ``probabilities(circuit)`` method, a
    :class:`~repro.core.supersim.SuperSim` (whose
    ``run(circuit, keep_qubits=...)`` keeps the reconstruction narrow), or
    the pipeline's typed config objects.  The circuit is augmented with
    basis rotations so that ``<P>`` becomes a parity of Z-basis outcomes
    on P's support — which keeps the evaluation narrow even at large
    widths.
    """
    support = [q for q in range(pauli.n) if pauli.label()[q] != "I"]
    if not support:
        return float(pauli.scalar().real)
    rotated = circuit.copy()
    for q in support:
        for gate in _BASIS_ROTATION[pauli.label()[q]]:
            rotated.append(gate, q)
    rotated.measure(support)
    from repro.core.supersim import SuperSim

    backend = as_scorer(backend)
    if isinstance(backend, SuperSim):
        dist = backend.run(rotated, keep_qubits=support).distribution
    else:
        dist = backend.probabilities(rotated)
    return float(dist.parity_expectation() * pauli.scalar().real)


def energy(circuit: Circuit, hamiltonian: Hamiltonian, backend=None) -> float:
    """``<H>`` of the circuit's output state.

    ``backend`` may be ``None`` (stabilizer fast path) or anything
    :func:`as_scorer` accepts — a registered backend name, a backend
    object, a SuperSim instance, or typed config objects.  With the
    default stabilizer backend (Clifford circuits only) each term is an
    exact tableau expectation in {-1, 0, +1} — the CAFQA fast path.
    """
    if backend is None:
        backend = StabilizerSimulator()
    else:
        backend = as_scorer(backend)
    if isinstance(getattr(backend, "simulator", None), StabilizerSimulator):
        # unwrap the registry adapter so "stabilizer" hits the fast path
        backend = backend.simulator
    if isinstance(backend, StabilizerSimulator):
        tableau = backend.run(circuit)
        return float(
            sum(c * tableau.expectation(p) for c, p in hamiltonian.paulis())
        )
    return float(
        sum(
            c * pauli_expectation(circuit, p, backend)
            for c, p in hamiltonian.paulis()
        )
    )


def cafqa_search(
    ansatz,
    hamiltonian: Hamiltonian,
    iterations: int = 2,
    rng: np.random.Generator | int | None = None,
    initial_steps=None,
    restarts: int = 3,
) -> tuple[np.ndarray, float]:
    """Discrete coordinate descent over Clifford points of the ansatz.

    ``ansatz`` provides ``num_parameters`` and ``clifford_circuit(steps)``
    (e.g. :class:`repro.apps.hwea.HWEA`); each parameter takes a value in
    {0, 1, 2, 3} (multiples of pi/2).  The descent restarts from several
    random points (coordinate descent over a discrete cube is prone to local
    minima).  Returns ``(best_steps, best_energy)``.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sim = StabilizerSimulator()
    best_steps: np.ndarray | None = None
    best_energy = np.inf
    for restart in range(max(1, restarts)):
        if initial_steps is not None and restart == 0:
            steps = np.array(initial_steps, dtype=int)
        else:
            steps = rng.integers(0, 4, size=ansatz.num_parameters)
        current_energy = energy(ansatz.clifford_circuit(steps), hamiltonian, sim)
        for _ in range(iterations):
            improved = False
            order = rng.permutation(ansatz.num_parameters)
            for index in order:
                current = steps[index]
                for candidate in range(4):
                    if candidate == current:
                        continue
                    steps[index] = candidate
                    e = energy(ansatz.clifford_circuit(steps), hamiltonian, sim)
                    if e < current_energy - 1e-12:
                        current_energy = e
                        current = candidate
                        improved = True
                steps[index] = current
            if not improved:
                break
        if current_energy < best_energy:
            best_energy = current_energy
            best_steps = steps.copy()
    return best_steps, best_energy
