"""Phase-flip repetition code (paper §IV-A, §VI-B; SupermarQ-style).

The phase code protects against Z errors: data qubits are prepared in |+>,
and each adjacent pair's X xX parity is extracted onto an ancilla.  One
round of syndrome extraction plus an X-basis data readout is the circuit the
paper benchmarks in Fig. 7 (with one injected T gate).  The circuit
generates very little entanglement — which is exactly why the MPS simulator
wins on this benchmark while the extended stabilizer's sampler collapses.

Qubit layout for distance ``d``: data qubits ``0..d-1``, ancillas
``d..2d-2`` (ancilla ``d+i`` checks data ``i`` and ``i+1``).
"""

from __future__ import annotations

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.circuits.random import inject_t_gates
from repro.stabilizer.noise import NoiseModel, PauliChannel


def phase_flip_repetition_code(distance: int, measure_data: bool = True) -> Circuit:
    """One round of the distance-``d`` phase code (2d-1 qubits)."""
    if distance < 2:
        raise ValueError("distance must be at least 2")
    d = distance
    n = 2 * d - 1
    circuit = Circuit(n)
    for q in range(d):
        circuit.append(gates.H, q)  # data in |+>
    for i in range(d - 1):
        ancilla = d + i
        # measure X_i X_{i+1}: Hadamard ancilla, CX from ancilla to data
        circuit.append(gates.H, ancilla)
        circuit.append(gates.CX, ancilla, i)
        circuit.append(gates.CX, ancilla, i + 1)
        circuit.append(gates.H, ancilla)
    if measure_data:
        for q in range(d):
            circuit.append(gates.H, q)  # X-basis readout of data
    circuit.measure_all()
    return circuit


def near_clifford_phase_code(
    distance: int,
    num_t: int = 1,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """The Fig. 7 benchmark: one phase-code round with injected T gates."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return inject_t_gates(phase_flip_repetition_code(distance), num_t, rng)


def decode_majority(syndrome_bits) -> int:
    """Decode a phase-code readout: majority vote over corrected data bits.

    ``syndrome_bits`` is the full measurement record
    ``(data 0..d-1 in X basis, ancillas d..2d-2)``; returns the decoded
    logical X-basis bit (0 = |+>_L).
    """
    bits = list(syndrome_bits)
    d = (len(bits) + 1) // 2
    data = bits[:d]
    ones = sum(data)
    return int(ones > d // 2)


def logical_phase_error_rate(
    distance: int,
    phase_flip_probability: float,
    shots: int | None = None,
    rng: np.random.Generator | int | None = None,
    backend="stabilizer",
    sampling=None,
) -> float:
    """Monte-Carlo logical error rate of one noisy phase-code round.

    Z (phase-flip) noise is applied after every gate via Pauli-frame
    sampling; a run is a logical error when majority decoding of the X-basis
    data readout returns 1 (the encoded state was |+>_L, i.e. all-|+>).

    ``backend`` is a registered backend name (or instance) that supports
    noisy sampling (``capabilities.supports_noise``) — the default is the
    stabilizer backend's Pauli-frame sampler — or an
    :class:`~repro.core.config.ExecutionConfig` whose ``backend`` field
    names one.  A :class:`~repro.core.config.SamplingConfig` passed as
    ``sampling`` supplies ``shots`` and the seed instead of the loose
    kwargs.
    """
    from repro.backends import get_backend
    from repro.core.config import ExecutionConfig, SamplingConfig

    if sampling is not None:
        if shots is not None or rng is not None:
            raise TypeError(
                "pass either sampling=SamplingConfig(...) or the loose "
                "shots=/rng= kwargs, not both"
            )
        if sampling.shots is None:
            raise TypeError(
                "logical_phase_error_rate is a Monte-Carlo estimate; the "
                "SamplingConfig must carry finite shots"
            )
        if sampling != SamplingConfig(shots=sampling.shots, seed=sampling.seed):
            # this function builds its own noise model from
            # phase_flip_probability and decodes raw bits — a config
            # carrying noise/clifford_shots/snap/tomography would be
            # silently ignored, so reject it like the ExecutionConfig path
            raise TypeError(
                "logical_phase_error_rate only consumes the `shots` and "
                "`seed` fields of a SamplingConfig; the noise model here "
                "is built from phase_flip_probability"
            )
        shots = sampling.shots
        rng = sampling.seed
    if shots is None:
        shots = 2000
    if isinstance(backend, ExecutionConfig):
        resolved = backend.backend or "stabilizer"
        if backend != ExecutionConfig(backend=backend.backend):
            # this function samples one noisy circuit directly (no cutting,
            # no router, no cache) — silently dropping configured fields
            # would mislead, so reject them explicitly
            raise TypeError(
                "logical_phase_error_rate only consumes the `backend` "
                "field of an ExecutionConfig; other configured fields "
                "(router/parallel/cache/...) have no effect here"
            )
        backend = resolved
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    circuit = phase_flip_repetition_code(distance)
    noise = NoiseModel(
        after_gate_1q=PauliChannel.phase_flip(phase_flip_probability),
        after_gate_2q=PauliChannel(
            2,
            [
                (phase_flip_probability / 2, "ZI"),
                (phase_flip_probability / 2, "IZ"),
            ],
        ),
    )
    bits = get_backend(backend).sample_noisy_bits(circuit, noise, shots, rng)
    # vectorised majority decode over all shots: corrected data bits are
    # the X-basis readout columns; a logical error is a majority of ones
    data = np.asarray(bits, dtype=bool)[:, :distance]
    errors = int(np.count_nonzero(data.sum(axis=1) > distance // 2))
    return errors / shots
