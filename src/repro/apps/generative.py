"""Clifford generative modeling (paper §IV-C).

References [2] and [16] of the paper prove unconditional quantum advantages
for generative modeling with Clifford circuits; the practical obstacle they
leave open is *training*, which wants non-Clifford gates for gradient-like
freedom.  This module provides the corresponding workload:

* a **stabilizer Born machine** — a parameterised Clifford circuit whose
  measurement distribution is the model distribution, trainable by discrete
  search with cheap stabilizer simulation (the CAFQA trick applied to
  distribution matching);
* a **near-Clifford refinement** step that perturbs one parameter off the
  Clifford grid and scores candidates through SuperSim — the paper's
  proposed use of Clifford-based cutting for model training.

The loss is total variation distance to a target distribution over
bitstrings (any metric over :class:`Distribution` works).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution, total_variation_distance
from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.stabilizer.simulator import StabilizerSimulator


class BornMachine:
    """A brickwork Clifford ansatz used as a generative model.

    Layout per layer: ``YPow(a_q) ZPow(b_q)`` on every qubit followed by a
    brickwork of CZ entanglers (alternating offset per layer).  Parameters
    are exponents in turns of pi; Clifford points are multiples of 1/2.
    """

    def __init__(self, n_qubits: int, layers: int):
        if n_qubits < 1 or layers < 1:
            raise ValueError("need n_qubits >= 1 and layers >= 1")
        self.n_qubits = n_qubits
        self.layers = layers

    @property
    def num_parameters(self) -> int:
        return 2 * self.n_qubits * self.layers

    def circuit(self, parameters) -> Circuit:
        parameters = np.asarray(parameters, dtype=float)
        if parameters.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {parameters.shape}"
            )
        circuit = Circuit(self.n_qubits)
        index = 0
        for layer in range(self.layers):
            for q in range(self.n_qubits):
                a, b = parameters[index], parameters[index + 1]
                index += 2
                if a % 2.0 != 0.0:
                    circuit.append(gates.YPow(a), q)
                if b % 2.0 != 0.0:
                    circuit.append(gates.ZPow(b), q)
            start = layer % 2
            for q in range(start, self.n_qubits - 1, 2):
                circuit.append(gates.CZ, q, q + 1)
        circuit.measure_all()
        return circuit

    def clifford_circuit(self, steps) -> Circuit:
        return self.circuit(np.asarray(steps, dtype=int) * 0.5)


def model_distribution(circuit: Circuit, backend=None) -> Distribution:
    """The Born distribution of a model circuit."""
    if backend is None:
        backend = StabilizerSimulator()
    return backend.probabilities(circuit)


def train_clifford(
    model: BornMachine,
    target: Distribution,
    iterations: int = 2,
    rng: np.random.Generator | int | None = None,
    restarts: int = 2,
) -> tuple[np.ndarray, float]:
    """Discrete coordinate-descent fit of the Clifford Born machine.

    Minimises total variation distance to ``target``; every candidate is a
    stabilizer circuit, so evaluation is polynomial-time at any width.
    Returns ``(best_steps, best_tvd)``.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sim = StabilizerSimulator()

    def loss(steps) -> float:
        dist = model_distribution(model.clifford_circuit(steps), sim)
        return total_variation_distance(dist, target)

    best_steps = None
    best_loss = np.inf
    for _ in range(max(1, restarts)):
        steps = rng.integers(0, 4, size=model.num_parameters)
        current = loss(steps)
        for _ in range(iterations):
            improved = False
            for index in rng.permutation(model.num_parameters):
                keep = steps[index]
                for candidate in range(4):
                    if candidate == keep:
                        continue
                    steps[index] = candidate
                    value = loss(steps)
                    if value < current - 1e-12:
                        current = value
                        keep = candidate
                        improved = True
                steps[index] = keep
            if not improved:
                break
        if current < best_loss:
            best_loss = current
            best_steps = steps.copy()
    return best_steps, best_loss


def refine_near_clifford(
    model: BornMachine,
    steps,
    target: Distribution,
    backend,
    deltas=(-0.25, -0.125, 0.125, 0.25),
) -> tuple[np.ndarray, float]:
    """One non-Clifford refinement sweep (scored through ``backend``).

    Tries shifting each parameter off its Clifford value; each candidate
    circuit has exactly one non-Clifford gate, so a circuit-cutting backend
    (SuperSim) evaluates it with two cuts.  Returns the best parameter
    vector (in turns) and its loss.
    """
    base = np.asarray(steps, dtype=float) * 0.5
    best_params = base.copy()
    best_loss = total_variation_distance(
        model_distribution(model.circuit(base), backend), target
    )
    for index in range(model.num_parameters):
        for delta in deltas:
            params = base.copy()
            params[index] += delta
            circuit = model.circuit(params)
            if circuit.num_non_clifford > 1:  # pragma: no cover - by construction
                continue
            dist = model_distribution(circuit, backend)
            value = total_variation_distance(dist, target)
            if value < best_loss - 1e-12:
                best_loss = value
                best_params = params
    return best_params, best_loss
