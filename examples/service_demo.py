"""The distributed execution service: coordinator + worker fleet demo.

``SuperSim`` is a library; ``repro.service`` runs the same pipeline as a
long-lived shared service.  This demo stands the whole stack up inside
one script: a coordinator (in a background thread), two real worker
subprocesses (``python -m repro.service.worker``), and a
``ServiceClient`` whose ``run()``/``sweep()`` mirror the local engine.

Three things to watch:

* **bit-for-bit determinism** — job seeds derive from content
  fingerprints, not dispatch order, so the seeded service run is
  asserted identical to a local ``SuperSim`` run;
* **the shared variant cache** — a second client's sweep over the same
  grid is served entirely from the coordinator's cache tier (zero
  misses, zero worker jobs);
* **admission control** — every request is priced by
  ``ExecutionPlan.estimate()`` against a per-tenant token bucket; the
  demo prints the quote it was admitted under;
* **coordinator failover** — the final act SIGKILLs the coordinator in
  the middle of a sweep; a successor started with the same
  ``--journal-db`` recovers the journaled state, the client reconnects
  by itself, and the finished sweep is still bit-identical to a local
  run.

Run:  python examples/service_demo.py
"""

import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.circuits import Circuit, gates
from repro.core import SamplingConfig, SuperSim
from repro.service import Coordinator, ServiceClient

SRC = str(Path(repro.__file__).resolve().parents[1])


def make_circuit(theta: float) -> Circuit:
    n = 10
    c = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        c.append(gates.CX, q, q + 1)
    c.append(gates.ZPow(theta), n // 2)
    for q in range(n - 1, 0, -1):
        c.append(gates.CX, q - 1, q)
    c.append(gates.H, 0)
    return c


def spawn_worker(address: str, name: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service.worker",
         "--connect", address, "--slots", "2", "--name", name],
        env=env,
    )


def spawn_coordinator(port: int, journal: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.coordinator",
         "--port", str(port), "--journal-db", journal],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    proc.stdout.readline()  # "coordinator listening on ..."
    return proc


def restart_demo() -> None:
    """Kill the coordinator mid-sweep; its successor finishes the job."""
    thetas = [0.15, 0.3, 0.45, 0.6]
    sampling = SamplingConfig(shots=2000, seed=19)
    local = [
        p.distribution[0]
        for p in SuperSim(sampling=sampling).sweep(make_circuit, thetas)
    ]

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    address = f"127.0.0.1:{port}"

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "coordinator.db")
        first = spawn_coordinator(port, journal)
        worker = spawn_worker(address, "survivor")
        second = None
        try:
            with ServiceClient(address, sampling=sampling) as client:
                while len(client.stats()["workers"]) < 1:
                    time.sleep(0.05)
                stream = client.sweep(make_circuit, thetas)
                probs = [next(stream).distribution[0]]
                print("first point served; SIGKILLing the coordinator...")
                first.kill()
                first.wait(timeout=10)
                second = spawn_coordinator(port, journal)
                probs.extend(p.distribution[0] for p in stream)
                assert probs == local, "restart changed the numbers!"
                print(f"successor finished the sweep after "
                      f"{client.reconnects} client reconnect(s) — all "
                      f"{len(probs)} points bit-identical to a local run")
                client.drain_coordinator()
        finally:
            for proc in (first, second):
                if proc is not None and proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=10)
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait(timeout=10)


def main() -> None:
    thetas = [0.1, 0.25, 0.4, 0.55]
    sampling = SamplingConfig(shots=2000, seed=11)

    with Coordinator(quota_rate=500.0, quota_capacity=5000.0) as coordinator:
        address = coordinator.address
        print(f"coordinator listening on {address}")
        workers = [spawn_worker(address, f"w{i}") for i in range(2)]
        try:
            with ServiceClient(address, sampling=sampling) as client:
                # wait until both workers have joined the fleet
                while len(client.stats()["workers"]) < 2:
                    time.sleep(0.05)
                print("2 workers joined the fleet\n")

                quote = client.estimate(make_circuit(thetas[0]))
                print(f"admission quote per point: {quote.total_cost:.3g} "
                      f"cost units ({len(quote.fragments)} fragments)")

                print(f"\n{'theta':>7} {'P(0...0)':>10} {'hits':>5} "
                      f"{'misses':>7} {'faults':>7}")
                for point in client.sweep(make_circuit, thetas):
                    print(f"{point.params:>7} "
                          f"{point.distribution[0]:>10.4f} "
                          f"{point.cache_hits:>5} "
                          f"{point.result.cache_misses:>7} "
                          f"{len(point.result.faults.events):>7}")

                # --- determinism: the service result IS the local result ----
                local = SuperSim(sampling=sampling).run(make_circuit(0.25))
                remote = client.run(make_circuit(0.25))
                assert remote.distribution.probs == local.distribution.probs
                print("\nservice run is bit-for-bit identical to a local "
                      "SuperSim run")

            # --- the cache tier is shared across clients --------------------
            with ServiceClient(address, sampling=sampling) as second:
                points = list(second.sweep(make_circuit, thetas))
                misses = sum(p.result.cache_misses for p in points)
                assert misses == 0, "second client should hit the shared cache"
                stats = second.stats()
                cache = stats["cache"]
                print(f"second client swept {len(points)} points with 0 "
                      "variant misses — served from the shared cache tier "
                      f"(hits={cache.get('hits')}, "
                      f"entries={cache.get('entries')})")
                print(f"fleet: {len(stats['workers'])} workers, "
                      f"{stats['jobs_completed']} jobs completed, "
                      f"{stats['requests']} requests admitted")
                second.shutdown_coordinator()
        finally:
            for worker in workers:
                try:
                    worker.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.wait(timeout=10)
    print("coordinator and workers shut down cleanly")

    # --- resilience: the coordinator is disposable ----------------------
    print("\n--- coordinator restart mid-sweep (durable journal) ---")
    restart_demo()


if __name__ == "__main__":
    main()
