"""Batch sweeps: the paper's dominant VQE/QAOA workload (§VII).

A parameter sweep re-runs one circuit shape under many parameter points.
``SuperSim.sweep`` batches this: the cut locations found for the first
point are reused, the content-addressed variant cache is shared across
all points (the wide Clifford bulk is simulated exactly once for the
whole sweep), and results stream back as each point completes.

The demo sweeps the angle of one ZPow gate inside a 10-qubit Clifford
circuit, shows the per-point cache behaviour, and checks that a sweep
point is bit-identical to an independent ``run()`` of the same circuit.

Run:  python examples/parameter_sweep.py
"""

import time

import numpy as np

from repro.circuits import Circuit, gates
from repro.core import SuperSim


def make_circuit(theta: float) -> Circuit:
    n = 10
    c = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        c.append(gates.CX, q, q + 1)
    c.append(gates.ZPow(theta), n // 2)  # the only parameterised gate
    for q in range(n - 1, 0, -1):
        c.append(gates.CX, q - 1, q)
    c.append(gates.H, 0)
    return c


def main() -> None:
    thetas = [round(t, 3) for t in np.linspace(0.05, 0.95, 10)]
    sim = SuperSim()

    print(f"sweeping {len(thetas)} angles of a 10-qubit near-Clifford circuit")
    print(f"{'theta':>7} {'P(0...0)':>10} {'hits':>5} {'misses':>7} {'ms':>8}")
    start = time.perf_counter()
    for point in sim.sweep(make_circuit, thetas):
        p0 = point.distribution[0]
        ms = point.result.timings["evaluate"] * 1e3
        print(f"{point.params:>7} {p0:>10.4f} {point.cache_hits:>5} "
              f"{point.result.cache_misses:>7} {ms:>8.2f}")
    sweep_seconds = time.perf_counter() - start
    print(f"sweep total: {sweep_seconds:.2f}s — after the first point only "
          "the rotated fragment's variants are re-simulated")

    # --- a sweep point is bit-identical to an independent run ----------------
    independent = SuperSim().run(make_circuit(thetas[3])).distribution
    swept = next(
        s for s in SuperSim().sweep(make_circuit, thetas) if s.index == 3
    ).distribution
    assert independent.probs == swept.probs, (
        "sweep must reproduce independent runs exactly"
    )
    print("\nsweep point 3 is bit-identical to an independent run of the "
          "same circuit")


if __name__ == "__main__":
    main()
