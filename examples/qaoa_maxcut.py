"""QAOA MaxCut on the Sherrington-Kirkpatrick model (paper §IV-B, Fig. 6).

The SK QAOA ansatz needs all-to-all connectivity, which makes it expensive
for MPS simulation and (past ~25 qubits) impossible for statevectors, while
SuperSim only pays for the single injected T gate.  This example:

1. validates SuperSim against the statevector simulator at small width, and
2. scales the same near-Clifford QAOA circuit to widths no statevector can
   touch, reporting runtime and the expected cut value computed from
   SuperSim's reconstructed ZZ correlations.

Run:  python examples/qaoa_maxcut.py
"""

import time

import numpy as np

from repro.analysis import hellinger_fidelity
from repro.apps.qaoa import (
    expected_cut,
    expected_cut_from_correlations,
    near_clifford_qaoa,
    sk_model,
)
from repro.core import SuperSim
from repro.statevector import StatevectorSimulator


def main() -> None:
    sim = SuperSim()

    # --- validation at small width ------------------------------------------
    n = 8
    circuit = near_clifford_qaoa(n, rounds=1, num_t=1, rng=2)
    sv = StatevectorSimulator()
    reference = sv.probabilities(circuit)
    reconstructed = sim.run(circuit).distribution
    fidelity = hellinger_fidelity(reference, reconstructed)
    couplings = sk_model(n, rng=2)
    print(f"n={n}: Hellinger fidelity vs statevector = {fidelity:.8f}")
    print(f"      E[cut] from reconstruction = "
          f"{expected_cut(couplings, reconstructed):+.4f} "
          f"(exact {expected_cut(couplings, reference):+.4f})")

    # --- scaling beyond statevector reach ------------------------------------
    print(f"\n{'n':>4} {'gates':>6} {'cuts':>5} {'runtime':>9}   E[cut]")
    for n in (8, 16, 24, 32, 40):
        rng = np.random.default_rng(n)
        couplings = sk_model(n, rng)
        circuit = near_clifford_qaoa(n, rounds=1, num_t=1, rng=rng)
        start = time.perf_counter()
        result = sim.run(circuit, keep_qubits=[0])  # warm the fragments
        elapsed = time.perf_counter() - start
        start = time.perf_counter()
        value = expected_cut_from_correlations(couplings, circuit, sim)
        cut_time = time.perf_counter() - start
        print(f"{n:>4} {len(circuit):>6} {result.num_cuts:>5} "
              f"{elapsed + cut_time:8.2f}s  {value:+.3f}")
    print("\n(statevector simulation of the 40-qubit instance would need "
          "16 TiB of memory)")


if __name__ == "__main__":
    main()
