"""Quickstart: the staged plan→execute pipeline on a near-Clifford circuit.

Builds a 12-qubit GHZ-style Clifford circuit, injects one T gate in the
middle, then walks the pipeline explicitly:

1. ``plan()``   — cut the circuit and route every fragment (no simulation);
2. ``estimate()`` — price the plan as a zero-simulation dry run;
3. ``execute()`` — evaluate fragment variants, reconstruct, validate
   against exact statevector simulation;
4. run again — the variant cache turns the repeat into dictionary lookups.

Run:  python examples/quickstart.py
"""

from repro.analysis import hellinger_fidelity
from repro.circuits import Circuit, gates, inject_t_gates
from repro.core import ExecutionConfig, SamplingConfig, SuperSim
from repro.statevector import StatevectorSimulator
from repro.testing import ChaosSchedule


def main() -> None:
    n = 12
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    for q in range(0, n, 2):
        circuit.append(gates.S, q)
    circuit = inject_t_gates(circuit, count=1, rng=7)
    print(f"circuit: {circuit}")
    print(f"non-Clifford gates: {circuit.num_non_clifford}")

    # --- stage 1: plan — cut placement + backend routing, zero simulation ---
    sim = SuperSim()  # exact fragment evaluation
    plan = sim.plan(circuit)
    print(f"\ncuts: {plan.num_cuts}  fragments: {plan.num_fragments} "
          f"(sizes {[f.n_qubits for f in plan.cut_circuit.fragments]})")

    # --- stage 2: estimate — dry-run pricing before paying anything ---------
    estimate = plan.estimate()
    for fragment_plan in estimate.fragments:
        print(f"  {fragment_plan}")
    print(f"predicted: {estimate.num_variants} variants "
          f"({estimate.unique_variants} unique), "
          f"4^{estimate.num_cuts} = {estimate.reconstruction_terms} "
          f"reconstruction terms, model cost ~{estimate.total_cost:.3g}")

    # --- stage 3: execute — evaluate -> tomography -> reconstruct -----------
    result = plan.execute()
    print(f"\nvariants simulated per backend: {result.backend_usage}")
    print(f"reconstruction terms pruned as zero: {result.stats.terms_skipped}")
    for stage in ("cut", "evaluate", "tomography", "reconstruct"):
        print(f"  {stage:<12} {result.timings[stage] * 1e3:8.2f} ms")

    # --- stage 4: run again — the variant cache carries over -----------------
    cached_estimate = sim.plan(circuit).estimate()
    print(f"\nre-planning predicts {cached_estimate.cached_variants} of "
          f"{cached_estimate.unique_variants} unique variants already cached")
    again = sim.run(circuit)  # run() is just plan().execute()
    print(f"second run: {again.cache_hits} variant cache hits, "
          f"{again.cache_misses} misses "
          f"(evaluate {again.timings['evaluate'] * 1e3:.2f} ms)")

    # --- validate against the dense reference -------------------------------
    reference = StatevectorSimulator().probabilities(circuit)
    fidelity = hellinger_fidelity(reference, result.distribution)
    print(f"\nHellinger fidelity vs statevector: {fidelity:.10f}")

    # --- sampling is array-native end to end --------------------------------
    # Distributions store packed key/probability arrays, so multi-shot
    # sampling is a handful of NumPy kernels: expect hundreds of thousands
    # to millions of shots/second even at hundreds of qubits (the 200q
    # affine-form benchmark in benchmarks/perf_smoke.py runs at ~1M
    # shots/s; BENCH_core.json tracks the current number).
    import time

    shots = 100_000
    start = time.perf_counter()
    counts = result.distribution.sample(shots, rng=0)
    elapsed = time.perf_counter() - start
    print(f"sampled {shots} shots in {elapsed * 1e3:.1f} ms "
          f"(~{shots / elapsed:,.0f} shots/s, {len(counts)} distinct outcomes)")

    print("\ntop outcomes:")
    top = sorted(result.distribution, key=lambda kv: -kv[1])[:4]
    for outcome, p in top:
        print(f"  |{outcome:0{n}b}>  p = {p:.4f}")

    # --- wide circuits: reconstruction memory is bounded, not 2^n ------------
    # Past ReconstructionConfig.max_dense_bits (default 26) the pipeline
    # auto-switches to recursive dynamic definition: a calibrated top-k
    # distribution at O(4^k * 2^qubit_limit) memory, plus exact marginals
    # over small windows via sim.marginal_probabilities(circuit, windows).
    # See examples/wide_circuit_reconstruction.py for a 61-qubit run.

    # --- accelerated kernel tier ---------------------------------------------
    # The hot loops (tableau layers, einsum recombination, distribution
    # marginal/sample) dispatch through repro.kernels.  With numba or
    # CuPy installed (pip install -e ".[numba]" / ".[cupy]"), set
    # REPRO_KERNELS=auto|numpy|numba|cupy in the environment — or call
    # repro.kernels.set_kernel_tier("numba") — to switch tiers at
    # runtime.  Missing accelerators silently fall back to NumPy, and
    # every tier is bit-for-bit identical on seeded runs; the active
    # tier is recorded in result.kernel_tier and per-kernel seconds in
    # result.timings["kernel.<name>"].
    import repro.kernels

    print(f"\nkernel tier: {again.kernel_tier} "
          f"(available: {', '.join(repro.kernels.available_tiers())})")

    # --- fault tolerance -----------------------------------------------------
    # ExecutionConfig(failure_policy="retry" | "degrade") makes the engine
    # survive faults instead of aborting: failed variant jobs retry with
    # capped exponential backoff (fingerprint-derived seeds make the retried
    # run bit-for-bit identical to a failure-free one), soft per-job
    # timeouts come from the calibrated cost model, crashed process pools
    # self-heal with poison-job quarantine, and "degrade" falls back to the
    # next-cheapest capable backend.  Every event lands in result.faults.
    # The deterministic chaos harness (repro.testing.ChaosSchedule) injects
    # faults on demand — here every variant job fails once, then retries:
    chaos = ChaosSchedule(seed=5, exception_rate=1.0, fail_attempts=1)
    sampling = SamplingConfig(shots=2000, seed=11)
    clean = SuperSim(sampling=sampling).run(circuit)
    survived = SuperSim(
        sampling=sampling,
        execution=ExecutionConfig(
            failure_policy="retry", chaos=chaos, retry_backoff=0.0
        ),
    ).run(circuit)
    assert survived.distribution.probs == clean.distribution.probs
    print(f"fault tolerance: {survived.faults.summary()} — "
          f"result bit-identical to the fault-free run")

    # --- running as a service ------------------------------------------------
    # The same pipeline runs as a long-lived shared service (repro.service):
    # an asyncio coordinator prices requests with estimate()-based admission
    # control and fans variant jobs out to worker subprocesses, while
    # ServiceClient mirrors the run/sweep/submit surface bit-for-bit.  The
    # service layer is resilient end to end: the coordinator journals
    # accepted work in SQLite (--journal-db), so a SIGKILLed coordinator's
    # successor recovers pending tickets and re-executes them to identical
    # results; workers are heartbeat-monitored and auto-reconnect; clients
    # retry with idempotency keys that never double-execute or
    # double-charge.  See examples/service_demo.py (including a coordinator
    # kill+restart mid-sweep) and tests/test_service_resilience.py.


if __name__ == "__main__":
    main()
