"""Quickstart: simulate a near-Clifford circuit with Clifford-based cutting.

Builds a 12-qubit GHZ-style Clifford circuit, injects one T gate in the
middle, and compares SuperSim's reconstructed output distribution against
exact statevector simulation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import hellinger_fidelity
from repro.circuits import Circuit, gates, inject_t_gates
from repro.core import SuperSim
from repro.statevector import StatevectorSimulator


def main() -> None:
    n = 12
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    for q in range(0, n, 2):
        circuit.append(gates.S, q)
    circuit = inject_t_gates(circuit, count=1, rng=7)
    print(f"circuit: {circuit}")
    print(f"non-Clifford gates: {circuit.num_non_clifford}")

    # --- SuperSim: cut -> evaluate fragments -> reconstruct -----------------
    sim = SuperSim()  # exact fragment evaluation
    result = sim.run(circuit)
    print(f"\ncuts: {result.num_cuts}  fragments: {result.num_fragments} "
          f"(sizes {[f.n_qubits for f in result.cut_circuit.fragments]})")
    print(f"fragment variants evaluated: {result.num_variants}")
    print(f"variants simulated per backend: {result.backend_usage}")
    print(f"reconstruction terms: 4^{result.num_cuts} = "
          f"{result.cut_circuit.reconstruction_terms} "
          f"({result.stats.terms_skipped} pruned as zero)")
    for stage in ("cut", "evaluate", "tomography", "reconstruct"):
        print(f"  {stage:<12} {result.timings[stage] * 1e3:8.2f} ms")

    # --- run again: the variant cache carries over ---------------------------
    again = sim.run(circuit)
    print(f"\nsecond run: {again.cache_hits} variant cache hits, "
          f"{again.cache_misses} misses "
          f"(evaluate {again.timings['evaluate'] * 1e3:.2f} ms)")

    # --- validate against the dense reference -------------------------------
    reference = StatevectorSimulator().probabilities(circuit)
    fidelity = hellinger_fidelity(reference, result.distribution)
    print(f"\nHellinger fidelity vs statevector: {fidelity:.10f}")

    print("\ntop outcomes:")
    top = sorted(result.distribution, key=lambda kv: -kv[1])[:4]
    for outcome, p in top:
        print(f"  |{outcome:0{n}b}>  p = {p:.4f}")


if __name__ == "__main__":
    main()
