"""Near-CAFQA VQE initialisation (paper §IV-B).

1. CAFQA: search the *Clifford points* of a hardware-efficient ansatz for
   the lowest energy of the H2 molecular Hamiltonian — every candidate is
   scored with cheap stabilizer simulation.
2. Near-CAFQA: perturb one ansatz parameter away from its Clifford value,
   making exactly one gate non-Clifford, and score each candidate through
   SuperSim (which cuts that single gate out).  The richer near-Clifford
   space recovers most of the remaining correlation energy — the motivating
   use case for Clifford-based circuit cutting.

Run:  python examples/near_cafqa_vqe.py
"""

import numpy as np

from repro.apps.hwea import HWEA
from repro.apps.vqe import cafqa_search, energy, h2_hamiltonian
from repro.core import SuperSim


def main() -> None:
    hamiltonian = h2_hamiltonian()
    matrix = sum(c * p.to_matrix() for c, p in hamiltonian.paulis())
    exact_ground = float(np.linalg.eigvalsh(matrix)[0])
    print(f"H2 exact ground energy:     {exact_ground:+.6f} Ha")

    # --- stage 1: CAFQA over Clifford points --------------------------------
    ansatz = HWEA(2, 2)
    steps, e_clifford = cafqa_search(
        ansatz, hamiltonian, iterations=4, rng=11, restarts=4
    )
    print(f"CAFQA best Clifford energy: {e_clifford:+.6f} Ha "
          f"(gap {e_clifford - exact_ground:+.6f})")

    # --- stage 2: near-CAFQA — one parameter leaves the Clifford grid -------
    base_params = steps * 0.5
    # SuperSim's variant cache persists across the sweep: the Clifford bulk
    # of the ansatz is identical between candidates, so only the perturbed
    # fragment is re-simulated each iteration
    supersim = SuperSim()
    best = (e_clifford, None, 0.0)
    for index in range(ansatz.num_parameters):
        for delta in (-0.25, -0.15, -0.08, 0.08, 0.15, 0.25):
            params = base_params.copy()
            params[index] += delta
            circuit = ansatz.circuit(params)
            assert circuit.num_non_clifford <= 1
            e = energy(circuit, hamiltonian, supersim)
            if e < best[0]:
                best = (e, index, delta)
    e_near, index, delta = best
    if index is None:
        print("near-CAFQA: no single-parameter perturbation improved the energy")
        return
    print(f"near-CAFQA energy:          {e_near:+.6f} Ha "
          f"(parameter {index} shifted by {delta:+.2f} turns, "
          f"gap {e_near - exact_ground:+.6f})")
    recovered = (e_near - e_clifford) / (exact_ground - e_clifford)
    print(f"one non-Clifford gate recovered {100 * recovered:.1f}% of the "
          "remaining correlation energy")


if __name__ == "__main__":
    main()
