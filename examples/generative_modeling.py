"""Clifford generative modeling (paper §IV-C).

Trains a stabilizer Born machine to match a target distribution with cheap
Clifford simulation, then refines one parameter off the Clifford grid —
scored through SuperSim — to reach statistics no stabilizer model can
express.  This is the paper's third application: generative models that are
"primarily Clifford, with non-Clifford gates to enable gradient descent".

Run:  python examples/generative_modeling.py
"""

import numpy as np

from repro.analysis import Distribution, total_variation_distance
from repro.apps.generative import (
    BornMachine,
    model_distribution,
    refine_near_clifford,
    train_clifford,
)
from repro.core import SuperSim


def main() -> None:
    # target: correlated pair statistics with a non-stabilizer bias
    target = Distribution(2, {0b00: 0.6, 0b11: 0.3, 0b01: 0.1})
    model = BornMachine(2, 2)
    print(f"target: {target}")
    print(f"model: {model.n_qubits} qubits, {model.layers} layers, "
          f"{model.num_parameters} parameters")

    # --- stage 1: Clifford training (stabilizer-simulable) -------------------
    steps, clifford_loss = train_clifford(
        model, target, iterations=3, rng=0, restarts=4
    )
    print(f"\nClifford training:    TVD = {clifford_loss:.4f}")
    print("(stabilizer Born machines only reach probabilities k/2^m — the "
          "0.6/0.3/0.1 target is off that lattice)")

    # --- stage 2: near-Clifford refinement through SuperSim ------------------
    params, refined_loss = refine_near_clifford(
        model, steps, target, SuperSim(),
        deltas=(-0.3, -0.2, -0.1, 0.1, 0.2, 0.3),
    )
    circuit = model.circuit(params)
    print(f"near-Clifford refine: TVD = {refined_loss:.4f} "
          f"({circuit.num_non_clifford} non-Clifford gate)")

    final = model_distribution(circuit, SuperSim())
    print("\nmodel vs target probabilities:")
    for outcome in (0b00, 0b01, 0b10, 0b11):
        print(f"  |{outcome:02b}>  model {final[outcome]:.3f}   "
              f"target {target[outcome]:.3f}")
    improvement = clifford_loss - refined_loss
    print(f"\none non-Clifford gate improved TVD by {improvement:.4f}")


if __name__ == "__main__":
    main()
