"""SupercheQ-IE quantum fingerprinting (paper §IV-D).

Encodes two "files" into stabilizer fingerprints, shows exact equality
testing via canonical stabilizer comparison, demonstrates the incremental
update property, and estimates the collision behaviour of the encoding.

Run:  python examples/fingerprinting.py
"""

import numpy as np

from repro.apps.fingerprint import (
    fingerprint_circuit,
    fingerprints_equal,
    incremental_update,
)


def main() -> None:
    n_qubits = 8
    rng = np.random.default_rng(0)
    file_a = rng.integers(0, 2, size=32).tolist()
    file_b = list(file_a)
    file_b[17] ^= 1  # flip one bit

    fp_a = fingerprint_circuit(file_a, n_qubits, seed=42)
    fp_b = fingerprint_circuit(file_b, n_qubits, seed=42)
    fp_a2 = fingerprint_circuit(file_a, n_qubits, seed=42)

    print(f"fingerprints: {n_qubits} qubits, {len(file_a)}-bit files")
    print(f"  same file  -> equal fingerprints: {fingerprints_equal(fp_a, fp_a2)}")
    print(f"  1-bit diff -> equal fingerprints: {fingerprints_equal(fp_a, fp_b)}")

    # incrementality: appending a bit does not require re-encoding
    prefix = fingerprint_circuit(file_a[:-1], n_qubits, seed=42)
    extended = incremental_update(prefix, file_a[-1], seed=42)
    print(f"  incremental == batch encoding:   "
          f"{fingerprints_equal(extended, fp_a)}")
    print(f"  gates for the update: {len(extended) - len(prefix)} "
          f"(vs {len(fp_a)} for full re-encoding)")

    # collision estimate: random distinct files should (almost) never collide
    trials, collisions = 200, 0
    for _ in range(trials):
        x = rng.integers(0, 2, size=16).tolist()
        y = rng.integers(0, 2, size=16).tolist()
        if x != y and fingerprints_equal(
            fingerprint_circuit(x, n_qubits, seed=7),
            fingerprint_circuit(y, n_qubits, seed=7),
        ):
            collisions += 1
    print(f"  collisions among {trials} random distinct file pairs: {collisions}")


if __name__ == "__main__":
    main()
