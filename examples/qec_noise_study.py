"""QEC noise study with the phase-flip repetition code (paper §IV-A).

Part 1 — stabilizer-only: sweep the physical phase-flip rate and code
distance, estimating logical error rates with Pauli-frame sampling (the
kind of study Stim-style simulators support).

Part 2 — beyond Pauli noise: inject a *coherent* over-rotation (a
non-Clifford ZPow) into one round of the code — exactly the error family
stabilizer simulation cannot represent (paper §IV-A cites a 10-order-of-
magnitude underestimate from Pauli approximations) — and simulate the
circuit with SuperSim, comparing the syndrome distribution to the Pauli
(incoherent) approximation of the same channel.

Run:  python examples/qec_noise_study.py
"""

import numpy as np

from repro.analysis import total_variation_distance
from repro.apps.qec import logical_phase_error_rate, phase_flip_repetition_code
from repro.circuits import Circuit, gates
from repro.core import SamplingConfig, SuperSim
from repro.stabilizer import FrameSampler, NoiseModel, PauliChannel


def pauli_noise_sweep() -> None:
    print("logical phase-flip error rate (Pauli-frame sampling, 20k shots)")
    print(f"{'p_phys':>8} " + " ".join(f"d={d:<4}" for d in (3, 5, 7)))
    for p in (0.002, 0.01, 0.05, 0.15):
        # the noisy sampler is selected from the backend registry by name;
        # shot count and seed travel in a typed SamplingConfig
        sampling = SamplingConfig(shots=20000, seed=0)
        rates = [
            logical_phase_error_rate(d, p, backend="stabilizer", sampling=sampling)
            for d in (3, 5, 7)
        ]
        print(f"{p:8.3f} " + " ".join(f"{r:6.4f}" for r in rates))
    print("(larger distance suppresses logical errors below threshold)\n")


def coherent_error_study() -> None:
    """Coherent over-rotations accumulate *quadratically* in amplitude.

    ``k`` consecutive Z over-rotations by angle ``a`` flip a |+> qubit with
    probability sin^2(k a pi / 2) ~ (k a)^2, while the Pauli-twirled
    approximation — the only thing a stabilizer simulator can express —
    predicts ~ k * sin^2(a pi / 2) ~ k a^2.  Stabilizer-only QEC studies
    therefore underestimate coherent noise by a factor ~ k (the effect
    behind the 10-orders-of-magnitude example the paper cites from [9]).
    SuperSim simulates the coherent circuit exactly: the rotations sit on
    one wire, so two cuts isolate them all.
    """
    distance = 3
    base = phase_flip_repetition_code(distance)
    angle = 0.08   # Z over-rotation exponent per "gate" (turns of pi)
    repeats = 4
    data_qubit = 1
    prep_len = distance  # the H-prep layer

    coherent = Circuit(base.n_qubits, base.ops[:prep_len])
    for _ in range(repeats):
        coherent.append(gates.ZPow(angle), data_qubit)
    coherent.extend(base.ops[prep_len:])
    coherent.measure_all()
    supersim_dist = SuperSim().run(coherent).distribution

    # Pauli twirl of each rotation: Z flip with p = sin^2(pi*angle/2)
    p_twirl = float(np.sin(np.pi * angle / 2) ** 2)
    twirled = Circuit(base.n_qubits, base.ops[:prep_len])
    twirled.extend(base.ops[prep_len:])
    twirled.measure_all()
    frame = FrameSampler(
        twirled, _repeated_site_noise(prep_len - 1, data_qubit, p_twirl, repeats)
    )
    pauli_dist = frame.sample(200000, rng=1)

    def flip_probability(dist):
        # the injected error flips X-basis data bit `data_qubit`
        return sum(p for outcome, p in dist if dist.bits(outcome)[data_qubit])

    coherent_flip = flip_probability(supersim_dist)
    twirled_flip = flip_probability(pauli_dist)
    predicted_coherent = float(np.sin(repeats * angle * np.pi / 2) ** 2)
    tvd = total_variation_distance(supersim_dist, pauli_dist)
    print("coherent over-rotation vs Pauli-twirled approximation")
    print(f"  {repeats} x ZPow({angle}) on data qubit {data_qubit} "
          f"(per-gate twirl p = {p_twirl:.4f})")
    print(f"  flip probability — coherent (SuperSim): {coherent_flip:.4f} "
          f"(analytic {predicted_coherent:.4f})")
    print(f"  flip probability — Pauli twirl (frames): {twirled_flip:.4f}")
    print(f"  underestimation factor: {coherent_flip / twirled_flip:.2f}x; "
          f"syndrome-distribution TVD: {tvd:.4f}")
    print("(stabilizer-only simulation cannot represent the coherent build-up)")


def _repeated_site_noise(
    after_index: int, qubit: int, p: float, repeats: int
) -> NoiseModel:
    """A noise model with ``repeats`` phase-flip sites at one location."""
    model = NoiseModel()
    channel = PauliChannel.phase_flip(p)
    model.locations = lambda circuit: [  # type: ignore[method-assign]
        (after_index, channel, (qubit,)) for _ in range(repeats)
    ]
    return model


def main() -> None:
    pauli_noise_sweep()
    coherent_error_study()


if __name__ == "__main__":
    main()
