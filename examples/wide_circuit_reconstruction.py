"""Wide-circuit reconstruction: bounded-memory recombination at 61 qubits.

A 61-qubit GHZ chain with one non-Clifford rotation is trivially cheap to
*simulate* fragment-by-fragment, but its full output distribution spans
``2^61`` bins — the dense recombination accumulator alone would need
18 exabytes.  This example shows the three bounded-memory ways out:

1. ``mode="recursive"`` (auto-selected past ``max_dense_bits``): the
   dynamic-definition driver reconstructs a coarse top window, recurses
   into the heaviest bins, and returns a calibrated top-k distribution
   with peak memory ``O(4^k * 2^qubit_limit)``;
2. ``marginal_probabilities`` — exact marginals over small qubit windows
   straight from reduced fragment tensors, never touching the joint;
3. the guard: asking for the dense joint raises a clear
   ``ReconstructionMemoryError`` instead of freezing in an allocation.

Run:  python examples/wide_circuit_reconstruction.py
"""

import numpy as np

from repro.circuits import Circuit, gates
from repro.core import ReconstructionConfig, ReconstructionMemoryError, SuperSim


def wide_chain(n: int) -> Circuit:
    """GHZ chain with one XPow(1/4): 4-outcome support at any width."""
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    circuit.append(gates.XPow(0.25), n // 2)
    return circuit


def main() -> None:
    n = 61
    circuit = wide_chain(n)
    print(f"circuit: {circuit}  ({2**n:.2e} joint output bins)")

    # --- the guard: dense mode refuses wide outputs loudly -------------------
    dense_sim = SuperSim(reconstruction=ReconstructionConfig(mode="full"))
    try:
        dense_sim.run(circuit)
    except ReconstructionMemoryError as exc:
        print(f"\ndense mode refused (as it should):\n  {exc}")

    # --- recursive dynamic definition: calibrated top-k, bounded memory ------
    sim = SuperSim(
        reconstruction=ReconstructionConfig(qubit_limit=16, top_k=16)
    )
    result = sim.run(circuit)  # mode="auto" picks recursive past 26 bits
    print(f"\nmode: {result.reconstruction_mode} (auto-selected), "
          f"{result.reconstruction_windows} windows / "
          f"{result.reconstruction_refinements} refinements")
    print(f"peak accumulator: {result.stats.peak_window_entries} entries "
          f"(= 2^qubit_limit, vs 2^{n} dense)")
    print(f"probability mass covered by the beam: "
          f"{result.covered_probability:.12f}")
    print("top outcomes:")
    for outcome, p in sorted(result.distribution, key=lambda kv: -kv[1])[:4]:
        print(f"  |{outcome:0{n}b}>  p = {p:.6f}")

    # --- exact marginals without the joint ------------------------------------
    mid = n // 2
    single, pair = sim.marginal_probabilities(circuit, [[mid], [0, mid]])
    print(f"\nP(q{mid}=1) = {single[1]:.6f}  (exact: 0.5)")
    flip = np.sin(np.pi / 8) ** 2  # XPow(1/4) flip probability
    print(f"P(q0=0, q{mid}=1) = {pair[0b01]:.6f}  "
          f"(exact sin^2(pi/8)/2 = {flip / 2:.6f})")

    # --- cost model knows all of this up front --------------------------------
    estimate = sim.plan(circuit).estimate()
    print(f"\nestimate: {estimate.num_cuts} cuts, "
          f"reconstruction cost ~{estimate.reconstruction_cost:.3g} "
          f"of total ~{estimate.total_cost:.3g}")


if __name__ == "__main__":
    main()
