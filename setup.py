"""Shim for legacy editable installs (offline environment lacks `wheel`).

The accelerated kernel tiers are optional extras::

    pip install -e ".[numba]"   # JIT CPU kernels (repro.kernels numba tier)
    pip install -e ".[cupy]"    # GPU kernels (repro.kernels cupy tier)

Without them the library runs entirely on the pure-NumPy reference
kernels; see ``REPRO_KERNELS`` in ``repro/kernels/__init__.py``.
"""

from setuptools import setup

setup(
    extras_require={
        "numba": ["numba>=0.59"],
        "cupy": ["cupy-cuda12x>=13"],
    },
)
