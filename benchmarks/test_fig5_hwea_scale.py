"""Fig. 5: SuperSim scaling to hundreds of qubits (HWEA, 5 rounds, 1 T).

SuperSim only — no other backend in this repository (or the paper) can
touch these widths.  Expected shape: runtime stays in seconds up to 300
qubits, non-monotonic in width because the random T-gate location changes
the fragment structure (the "noisy" curve the paper remarks on).
"""

import pytest

from benchmarks.conftest import hwea_workload, record, run_supersim

SIZES = [50, 100, 150, 200, 250, 300]


@pytest.mark.parametrize("n", SIZES)
def test_hwea_scale(benchmark, n):
    circuit = hwea_workload(n)
    marginals = benchmark.pedantic(
        lambda: run_supersim(circuit), rounds=1, iterations=1
    )
    assert marginals.shape == (n, 2)
    assert float(marginals.sum()) == pytest.approx(n, abs=1e-6)
    record("fig5", simulator="supersim", n=n, seconds=benchmark.stats["mean"])
