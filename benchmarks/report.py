"""Pretty-print the benchmark series recorded under benchmarks/_results/.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/report.py
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"

FIGURES = {
    "fig1": "Fig. 1 — random Clifford circuits, depth = width, 10k shots",
    "fig3": "Fig. 3 — VQE HWEA, 5 rounds, 1 T gate: runtime vs width",
    "fig4": "Fig. 4 — VQE HWEA, 16 qubits, 1 T gate: runtime vs rounds",
    "fig5": "Fig. 5 — SuperSim scaling, HWEA 5 rounds, 1 T gate",
    "fig6": "Fig. 6 — QAOA SK MaxCut, 1 round, 1 T gate: runtime vs width",
    "fig7": "Fig. 7 — phase repetition code, 1 T gate: runtime + fidelity",
    "ablation_clifford_opts": "Ablation §IX — Clifford-specific optimizations",
    "ablation_cutter": "Ablation — cut placement strategy",
}


def load(figure: str) -> list[dict]:
    path = RESULTS_DIR / f"{figure}.jsonl"
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line]


def series_key(row: dict) -> str:
    return row.get("simulator") or row.get("config") or row.get("strategy", "?")


def x_key(row: dict) -> float:
    for key in ("rounds", "n"):
        if key in row:
            return row[key]
    return 0


def print_figure(figure: str, title: str) -> None:
    rows = load(figure)
    if not rows:
        return
    print(f"\n{title}")
    print("-" * len(title))
    by_series: dict[str, list[dict]] = defaultdict(list)
    for row in rows:
        by_series[series_key(row)].append(row)
    for name, points in sorted(by_series.items()):
        points.sort(key=x_key)
        print(f"  {name}:")
        for p in points:
            x = x_key(p)
            line = f"    x={x:<5g} time={p['seconds']:9.3f}s"
            if p.get("fidelity") is not None:
                line += f"  fidelity={p['fidelity']:.4f}"
            if "num_cuts" in p:
                line += f"  cuts={p['num_cuts']}"
            print(line)


def main() -> None:
    for figure, title in FIGURES.items():
        print_figure(figure, title)


if __name__ == "__main__":
    main()
