"""Service soak benchmark: concurrent clients against one coordinator.

Stands up the full service stack (coordinator thread + real worker
subprocesses), then drives it with ``CLIENTS`` concurrent
``ServiceClient`` threads, each running a parameter sweep whose grid
overlaps the other clients' — the millions-of-users posture in
miniature: many tenants, shared work, one cache tier.  Records per-point
latency percentiles (p50/p95/p99), aggregate throughput, and the shared
variant-cache hit rate into ``BENCH_service.json`` at the repository
root (same artifact trajectory as ``BENCH_core.json``).

Usage::

    PYTHONPATH=src python benchmarks/soak_service.py

Environment knobs for longer soaks: ``SOAK_CLIENTS``, ``SOAK_POINTS``,
``SOAK_WORKERS`` (defaults 4 / 6 / 2 keep the CI smoke under a minute).

``SOAK_CHAOS=1`` turns on the chaos-under-load leg: mid-soak one worker
is SIGKILLed and a replacement spawned, measuring how long the fleet
takes to recover (``recovery_seconds``) and how many jobs the
coordinator had to requeue (``jobs_requeued``) — both recorded in
``BENCH_service.json``.  The floors tighten accordingly: the worker
loss must be observed, every point must still complete, and the
determinism floor is unchanged — a kill may move work, never numbers.

Exit code is non-zero when the run violates the floors asserted at the
bottom: every point must complete, results must agree across clients
sweeping the same angle (bit-for-bit determinism is the service's
headline invariant), and the overlapping grids must produce shared-cache
hits.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import subprocess
import sys
import threading
import time

from repro.circuits import Circuit, gates
from repro.core import ExecutionConfig, SamplingConfig
from repro.service import Coordinator, ServiceClient

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"
SRC = str(REPO_ROOT / "src")

CLIENTS = int(os.environ.get("SOAK_CLIENTS", "4"))
POINTS = int(os.environ.get("SOAK_POINTS", "6"))
WORKERS = int(os.environ.get("SOAK_WORKERS", "2"))
CHAOS = os.environ.get("SOAK_CHAOS", "0") not in ("", "0")


def make_circuit(theta: float) -> Circuit:
    n = 10
    c = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        c.append(gates.CX, q, q + 1)
    c.append(gates.ZPow(theta), n // 2)
    for q in range(n - 1, 0, -1):
        c.append(gates.CX, q - 1, q)
    c.append(gates.H, 0)
    return c


def spawn_workers(address: str, n: int) -> list:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             "--connect", address, "--slots", "2", "--name", f"soak-w{i}"],
            env=env,
        )
        for i in range(n)
    ]


def client_sweep(address: str, tenant: str, thetas, latencies, outcomes):
    """One client's sweep; appends (theta, P(0)) and per-point latency."""
    sampling = SamplingConfig(shots=1000, seed=29)
    # under chaos a worker dies mid-sweep: ride it out via the fault
    # taxonomy (crash -> requeue) instead of surfacing the crash
    execution = ExecutionConfig(failure_policy="retry") if CHAOS else None
    with ServiceClient(
        address, sampling=sampling, tenant=tenant, execution=execution
    ) as client:
        last = time.perf_counter()
        for point in client.sweep(make_circuit, thetas):
            now = time.perf_counter()
            latencies.append(now - last)
            last = now
            outcomes.append((point.params, point.distribution[0]))


def percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(index)]


def main() -> int:
    # every client sweeps POINTS angles; half the grid is shared across
    # all clients (the cache-tier payoff), half is client-private
    shared = [round(0.1 + 0.05 * i, 3) for i in range(POINTS // 2)]
    grids = [
        shared + [round(0.5 + 0.01 * (c * POINTS + i), 3)
                  for i in range(POINTS - len(shared))]
        for c in range(CLIENTS)
    ]

    latencies: list[float] = []
    outcomes: list[tuple] = []
    recovery: dict = {}
    with Coordinator() as coordinator:
        workers = spawn_workers(coordinator.address, WORKERS)
        try:
            with ServiceClient(coordinator.address) as probe:
                while len(probe.stats()["workers"]) < WORKERS:
                    time.sleep(0.05)

            def chaos_leg():
                # wait for load, SIGKILL one worker mid-soak, spawn a
                # replacement, and time the fleet's return to strength
                deadline = time.monotonic() + 60
                while not outcomes and time.monotonic() < deadline:
                    time.sleep(0.02)
                victim = workers[0]
                killed_at = time.perf_counter()
                victim.kill()
                victim.wait(timeout=10)
                workers.extend(
                    spawn_workers(coordinator.address, 1)
                )
                with ServiceClient(coordinator.address) as watcher:
                    deadline = time.monotonic() + 60
                    while time.monotonic() < deadline:
                        live = watcher.stats()["workers"]
                        if len(live) >= WORKERS:
                            break
                        time.sleep(0.05)
                recovery["recovery_seconds"] = (
                    time.perf_counter() - killed_at
                )

            start = time.perf_counter()
            threads = [
                threading.Thread(
                    target=client_sweep,
                    args=(coordinator.address, f"tenant-{c}", grids[c],
                          latencies, outcomes),
                )
                for c in range(CLIENTS)
            ]
            if CHAOS:
                threads.append(threading.Thread(target=chaos_leg))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            with ServiceClient(coordinator.address) as probe:
                stats = probe.stats()
        finally:
            coordinator.shutdown()
            for worker in workers:
                try:
                    worker.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.wait(timeout=10)

    total_points = CLIENTS * POINTS
    cache = stats.get("cache") or {}
    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    ordered = sorted(latencies)
    results = {
        "clients": CLIENTS,
        "points_per_client": POINTS,
        "workers": WORKERS,
        "elapsed_seconds": elapsed,
        "points_completed": len(outcomes),
        "throughput_points_per_second": len(outcomes) / elapsed,
        "latency_p50_seconds": percentile(ordered, 0.50),
        "latency_p95_seconds": percentile(ordered, 0.95),
        "latency_p99_seconds": percentile(ordered, 0.99),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hit_rate,
        "jobs_completed": stats.get("jobs_completed", 0),
        "jobs_dispatched": stats.get("jobs_dispatched", 0),
        "workers_lost": stats.get("workers_lost", 0),
        "chaos": CHAOS,
        "jobs_requeued": stats.get("jobs_requeued", 0),
        "heartbeat_deaths": stats.get("heartbeat_deaths", 0),
        "recovery_seconds": recovery.get("recovery_seconds"),
    }

    # CI may be interrupted mid-write: stage to a tmp file and os.replace
    tmp = OUTPUT.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(results, indent=2) + "\n")
    os.replace(tmp, OUTPUT)
    print(json.dumps(results, indent=2))

    failures = []
    if len(outcomes) != total_points:
        failures.append(
            f"only {len(outcomes)}/{total_points} sweep points completed"
        )
    # determinism across tenants: every client swept the shared angles
    # with the same seed, so their probabilities must agree exactly
    by_theta: dict = {}
    for theta, p0 in outcomes:
        if theta in shared:
            by_theta.setdefault(theta, set()).add(p0)
    for theta, values in by_theta.items():
        if len(values) != 1:
            failures.append(
                f"clients disagree on theta={theta}: {sorted(values)}"
            )
    if shared and hits == 0:
        failures.append("overlapping grids produced zero shared-cache hits")
    if CHAOS:
        # the kill must have been observed and survived
        if not stats.get("workers_lost", 0):
            failures.append("chaos leg ran but no worker loss was recorded")
        if recovery.get("recovery_seconds") is None:
            failures.append("fleet never returned to full strength")
    elif stats.get("workers_lost", 0):
        failures.append(f"lost {stats['workers_lost']} workers during soak")

    if failures:
        print("SOAK FLOOR FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    mean = statistics.fmean(ordered) if ordered else 0.0
    print(
        f"soak ok: {len(outcomes)} points from {CLIENTS} clients in "
        f"{elapsed:.2f}s ({results['throughput_points_per_second']:.1f}/s, "
        f"mean latency {mean * 1e3:.1f}ms, cache hit rate {hit_rate:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
