"""Perf smoke benchmark: core hot-path timings, tracked from PR 3 onward.

Times the bit-packed word-parallel tableau against the byte-per-bit
reference (``repro.stabilizer._reference``) on a 200-qubit Clifford
apply-circuit + full-measurement workload, and the einsum reconstruction
against the legacy ``4^k`` assignment loop on a k=4 chain-cut benchmark,
then writes ``BENCH_core.json`` at the repository root.  CI runs this on
every push so the perf trajectory is visible in the artifact history.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Exit code is non-zero when the packed engines regress below the floors
asserted at the bottom (tableau >= 5x, einsum beats the loop while
matching it within 1e-9), so CI fails loudly on a perf regression.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

import repro.kernels as rk
from repro.analysis.distributions import total_variation_distance
from repro.circuits import Circuit, gates, random_clifford_circuit
from repro.core import SuperSim
from repro.core.cutter import cut_circuit
from repro.core.fragments import Cut
from repro.core.config import ReconstructionConfig
from repro.core.reconstruction import (
    reconstruct_distribution,
    reconstruct_marginal,
)
from repro.core.tomography import build_fragment_tensor
from repro.stabilizer._reference import ReferenceTableau
from repro.stabilizer.tableau import Tableau

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_core.json"

TABLEAU_QUBITS = 200
TABLEAU_DEPTH = 40


def _best(fn, repeats: int) -> float:
    fn()  # warm-up: compiled layers, lazy imports
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_tableau() -> dict:
    """200-qubit Clifford apply_circuit + full measurement sweep."""
    circuit = random_clifford_circuit(TABLEAU_QUBITS, TABLEAU_DEPTH, rng=0)
    qubits = tuple(range(TABLEAU_QUBITS))

    def run(cls):
        tableau = cls(TABLEAU_QUBITS)
        tableau.apply_circuit(circuit)
        tableau.measurement_distribution(qubits)

    packed = _best(lambda: run(Tableau), repeats=5)
    reference = _best(lambda: run(ReferenceTableau), repeats=2)
    return {
        "workload": (
            f"{TABLEAU_QUBITS}q random Clifford depth {TABLEAU_DEPTH}, "
            "apply_circuit + measurement_distribution over all qubits"
        ),
        "packed_seconds": packed,
        "reference_seconds": reference,
        "speedup": reference / packed,
    }


def bench_sampling() -> dict:
    """Multi-shot sampling from the exact affine form (vectorised keys)."""
    circuit = random_clifford_circuit(TABLEAU_QUBITS, TABLEAU_DEPTH, rng=0)
    tableau = Tableau(TABLEAU_QUBITS)
    tableau.apply_circuit(circuit)
    affine = tableau.measurement_distribution(tuple(range(TABLEAU_QUBITS)))
    shots = 20_000
    seconds = _best(lambda: affine.sample(shots, rng=1), repeats=3)
    return {
        "workload": f"{shots} shots from the {TABLEAU_QUBITS}q affine form",
        "seconds": seconds,
        "shots_per_second": shots / seconds,
    }


def bench_distribution_kernels() -> dict:
    """Array-native Distribution kernels vs the dict-based baseline.

    A 10^5-outcome sparse distribution over 40 bits: ``marginal`` onto 20
    positions and a 10^5-shot ``sample``, timed against inline re-creations
    of the pre-refactor per-outcome dict loops.
    """
    from repro.analysis.distributions import Distribution

    rng = np.random.default_rng(7)
    n_bits = 40
    support = 100_000
    keys = np.unique(
        rng.integers(0, 1 << n_bits, size=support + support // 8, dtype=np.uint64)
    )[:support]
    vals = rng.random(len(keys))
    vals /= vals.sum()
    dist = Distribution.from_arrays(n_bits, keys, vals, assume_sorted=True)
    probs_dict = dist.probs
    keep = list(range(0, n_bits, 2))
    shots = 100_000

    def dict_marginal():
        out = {}
        for outcome, p in probs_dict.items():
            key = 0
            for i in keep:
                key = (key << 1) | ((outcome >> (n_bits - 1 - i)) & 1)
            out[key] = out.get(key, 0.0) + p
        return out

    def dict_sample():
        sample_rng = np.random.default_rng(3)
        outcome_list = list(probs_dict)
        weights = np.array([probs_dict[k] for k in outcome_list])
        draws = sample_rng.choice(len(outcome_list), size=shots, p=weights)
        counts = {}
        for d in draws:
            counts[outcome_list[d]] = counts.get(outcome_list[d], 0) + 1
        return counts

    array_seconds = _best(
        lambda: (dist.marginal(keep), dist.sample(shots, rng=np.random.default_rng(3))),
        repeats=3,
    )
    dict_seconds = _best(lambda: (dict_marginal(), dict_sample()), repeats=1)
    return {
        "workload": (
            f"{support}-outcome sparse distribution over {n_bits} bits: "
            f"marginal onto {len(keep)} positions + {shots}-shot sample"
        ),
        "array_seconds": array_seconds,
        "dict_seconds": dict_seconds,
        "speedup": dict_seconds / array_seconds,
    }


def bench_mps_sampling() -> dict:
    """Per-site vectorised MPS shot sampling on a 24q GHZ chain."""
    from repro.mps.simulator import MPSSimulator

    n = 24
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    circuit.measure_all()
    state = MPSSimulator().run(circuit)
    shots = 20_000
    seconds = _best(lambda: state.sample_bits(shots, rng=1), repeats=3)
    return {
        "workload": f"{shots} shots from a {n}q GHZ chain MPS",
        "seconds": seconds,
        "shots_per_second": shots / seconds,
    }


def _chain_workload(blocks: int, width: int, depth: int, seed: int):
    """A chain of Clifford blocks linked by one cut qubit each (k = blocks-1)."""
    rng = np.random.default_rng(seed)
    total = blocks * (width - 1) + 1
    circuit = Circuit(total)
    cuts = []
    for b in range(blocks):
        lo = b * (width - 1)
        if b > 0:
            boundary_ops = sum(1 for op in circuit.ops if lo in op.qubits)
            if boundary_ops == 0:
                circuit.append(gates.H, lo)
                boundary_ops = 1
            cuts.append(Cut(lo, boundary_ops))
        sub = random_clifford_circuit(width, depth, rng)
        circuit.extend(
            sub.map_qubits({i: lo + i for i in range(width)}, total).ops
        )
    circuit.measure_all()
    return circuit, cuts


def bench_reconstruction() -> dict:
    """k=4 chain-cut recombination: einsum contraction vs legacy loop."""
    circuit, cuts = _chain_workload(blocks=5, width=5, depth=6, seed=1)
    cc = cut_circuit(circuit, cuts)
    assert cc.num_cuts >= 4
    sim = SuperSim()
    data = sim._evaluator().evaluate_all(cc.fragments)
    keep = list(circuit.measured_qubits)
    keep_set = set(keep)
    kept_locals = [
        [lq for oq, lq in f.circuit_outputs if oq in keep_set]
        for f in cc.fragments
    ]
    tensors = [
        build_fragment_tensor(d, kl) for d, kl in zip(data, kept_locals)
    ]

    def run(method):
        dist, _ = reconstruct_distribution(
            cc, tensors, kept_locals, keep, prune_zeros=False, method=method
        )
        return dist

    einsum_seconds = _best(lambda: run("einsum"), repeats=3)
    loop_seconds = _best(lambda: run("loop"), repeats=1)
    einsum_dist = run("einsum")
    loop_dist = run("loop")
    keys = set(einsum_dist.probs) | set(loop_dist.probs)
    max_abs_diff = max(
        abs(einsum_dist[key] - loop_dist[key]) for key in keys
    )
    return {
        "workload": (
            f"{circuit.n_qubits}q Clifford chain, k={cc.num_cuts} cuts, "
            f"{len(cc.fragments)} fragments, dense recombination"
        ),
        "einsum_seconds": einsum_seconds,
        "loop_seconds": loop_seconds,
        "speedup": loop_seconds / einsum_seconds,
        "max_abs_diff": max_abs_diff,
        "tv_distance": total_variation_distance(einsum_dist, loop_dist),
    }


def bench_streaming_reconstruction() -> dict:
    """Windowed marginal vs dense-then-marginalize at the widest dense size.

    Same k=4 chain workload as ``bench_reconstruction`` (21 kept bits is
    the widest size the dense ``4^k * 2^n`` path comfortably serves):
    an 8-bit marginal via :func:`reconstruct_marginal` reduces the
    fragment tensors *before* contracting, so peak accumulator memory is
    ``2^8`` entries instead of ``2^21``.  A 61-qubit recursive run rides
    along as the dense-infeasible demonstration: top-k reconstruction
    with peak memory bounded by ``2^qubit_limit``.
    """
    circuit, cuts = _chain_workload(blocks=5, width=5, depth=6, seed=1)
    cc = cut_circuit(circuit, cuts)
    sim = SuperSim()
    data = sim._evaluator().evaluate_all(cc.fragments)
    keep = list(circuit.measured_qubits)
    keep_set = set(keep)
    kept_locals = [
        [lq for oq, lq in f.circuit_outputs if oq in keep_set]
        for f in cc.fragments
    ]
    tensors = [
        build_fragment_tensor(d, kl) for d, kl in zip(data, kept_locals)
    ]
    window = keep[:8]

    def dense():
        dist, stats = reconstruct_distribution(
            cc, tensors, kept_locals, keep, prune_zeros=False
        )
        return dist.marginal(range(len(window))), stats

    def windowed():
        return reconstruct_marginal(cc, tensors, kept_locals, window)

    dense_seconds = _best(lambda: dense(), repeats=3)
    windowed_seconds = _best(lambda: windowed(), repeats=3)
    dense_dist, dense_stats = dense()
    windowed_dist, windowed_stats = windowed()
    max_abs_diff = max(
        abs(dense_dist[key] - windowed_dist[key])
        for key in set(dense_dist.probs) | set(windowed_dist.probs)
    )

    wide = Circuit(61).append(gates.H, 0)
    for q in range(60):
        wide.append(gates.CX, q, q + 1)
    wide.append(gates.XPow(0.25), 30)
    wide_sim = SuperSim(
        reconstruction=ReconstructionConfig(qubit_limit=16, top_k=16)
    )
    recursive_seconds = _best(lambda: wide_sim.run(wide), repeats=3)
    wide_result = wide_sim.run(wide)
    return {
        "workload": (
            f"{circuit.n_qubits}q chain k={cc.num_cuts}: 8-bit windowed "
            "marginal vs dense-then-marginalize; 61q recursive top-k demo"
        ),
        "dense_seconds": dense_seconds,
        "windowed_seconds": windowed_seconds,
        "speedup": dense_seconds / windowed_seconds,
        "max_abs_diff": max_abs_diff,
        "dense_peak_entries": dense_stats.peak_window_entries,
        "windowed_peak_entries": windowed_stats.peak_window_entries,
        "peak_memory_ratio": (
            dense_stats.peak_window_entries
            / windowed_stats.peak_window_entries
        ),
        "recursive_61q_seconds": recursive_seconds,
        "recursive_61q_mode": wide_result.reconstruction_mode,
        "recursive_61q_windows": wide_result.reconstruction_windows,
        "recursive_61q_peak_entries": wide_result.stats.peak_window_entries,
        "recursive_61q_covered": wide_result.covered_probability,
    }


def _recombination_workload():
    """Shared k=4 chain tensors for the tier and path-cache benches."""
    circuit, cuts = _chain_workload(blocks=5, width=5, depth=6, seed=1)
    cc = cut_circuit(circuit, cuts)
    data = SuperSim()._evaluator().evaluate_all(cc.fragments)
    keep = list(circuit.measured_qubits)
    keep_set = set(keep)
    kept_locals = [
        [lq for oq, lq in f.circuit_outputs if oq in keep_set]
        for f in cc.fragments
    ]
    tensors = [
        build_fragment_tensor(d, kl) for d, kl in zip(data, kept_locals)
    ]
    return cc, tensors, kept_locals, keep


def bench_kernel_tiers() -> dict:
    """The three hot loops per available kernel tier, parity-checked.

    Times (a) the 200q packed tableau apply_circuit + measurement sweep,
    (b) the k=4 dense einsum recombination, and (c) the distribution
    marginal+sample pipeline under every tier whose dependency probed in,
    and asserts each accelerated tier reproduces the NumPy tier's results
    (bit-identical sample counts, 1e-12 on reconstructed floats).
    """
    circuit = random_clifford_circuit(TABLEAU_QUBITS, TABLEAU_DEPTH, rng=0)
    qubits = tuple(range(TABLEAU_QUBITS))
    cc, tensors, kept_locals, keep = _recombination_workload()

    rng = np.random.default_rng(7)
    n_bits = 40
    support = 100_000
    keys = np.unique(
        rng.integers(0, 1 << n_bits, size=support + support // 8, dtype=np.uint64)
    )[:support]
    vals = rng.random(len(keys))
    vals /= vals.sum()
    from repro.analysis.distributions import Distribution

    dist = Distribution.from_arrays(n_bits, keys, vals, assume_sorted=True)
    keep_positions = list(range(0, n_bits, 2))
    shots = 100_000

    def tableau_run():
        tableau = Tableau(TABLEAU_QUBITS)
        tableau.apply_circuit(circuit)
        tableau.measurement_distribution(qubits)

    def recon_run():
        return reconstruct_distribution(
            cc, tensors, kept_locals, keep, prune_zeros=False, method="einsum"
        )[0]

    def dist_run():
        return (
            dist.marginal(keep_positions),
            dist.sample(shots, rng=np.random.default_rng(3)),
        )

    tiers: dict = {}
    baseline = None
    saved = rk.get_kernel_tier()
    try:
        for tier in rk.available_tiers():
            rk.set_kernel_tier(tier)
            entry = {
                "tableau_seconds": _best(tableau_run, repeats=3),
                "reconstruction_seconds": _best(recon_run, repeats=3),
                "distribution_seconds": _best(dist_run, repeats=3),
            }
            recon = recon_run()
            marg, counts = dist_run()
            if baseline is None:
                baseline = (recon, marg, counts)
                entry["parity"] = "reference"
            else:
                ref_recon, ref_marg, ref_counts = baseline
                assert counts == ref_counts, f"{tier}: sample counts diverge"
                assert np.array_equal(
                    marg.keys_array, ref_marg.keys_array
                ), f"{tier}: marginal support diverges"
                np.testing.assert_allclose(
                    marg.values_array, ref_marg.values_array, atol=1e-12
                )
                assert np.array_equal(
                    recon.keys_array, ref_recon.keys_array
                ), f"{tier}: reconstruction support diverges"
                np.testing.assert_allclose(
                    recon.values_array, ref_recon.values_array, atol=1e-12
                )
                entry["parity"] = "ok"
            tiers[tier] = entry
    finally:
        rk.set_kernel_tier(saved)
    if "numba" in tiers:
        for loop in (
            "tableau_seconds",
            "reconstruction_seconds",
            "distribution_seconds",
        ):
            tiers["numba"][f"speedup_{loop.removesuffix('_seconds')}"] = (
                tiers["numpy"][loop] / tiers["numba"][loop]
            )
    return tiers


def bench_path_cache() -> dict:
    """Warm vs cold einsum contraction-path derivation on window contractions.

    The recursive dynamic-definition engine contracts identically-shaped
    small window tensors once per frontier bin; the memoized
    ``np.einsum_path`` turns the per-window greedy path derivation into a
    dict lookup.  Cold clears the cache before every contraction (the
    pre-cache behaviour), warm reuses it.
    """
    from repro.core import reconstruction as rec
    from repro.core.reconstruction import _reduce_window_tensors

    cc, tensors, kept_locals, keep = _recombination_workload()
    window = keep[:8]
    # reduce once up front: the recursive driver re-reduces per frontier
    # bin, but the contraction over the reduced shapes is the part the
    # path cache accelerates — time exactly that, repeated
    reduced, reduced_kept = _reduce_window_tensors(
        cc, tensors, kept_locals, window, {}
    )

    def contract():
        return reconstruct_distribution(
            cc, reduced, reduced_kept, window, max_dense_bits=None
        )

    # batch contractions per timed call: a single window contraction is
    # sub-millisecond, so timer/scheduler jitter would swamp the per-call
    # path-derivation saving
    batch = 20

    def cold():
        for _ in range(batch):
            rec.clear_einsum_path_cache()
            contract()

    def warm():
        for _ in range(batch):
            contract()

    cold_seconds = _best(cold, repeats=7) / batch
    rec.clear_einsum_path_cache()
    contract()  # prime
    warm_seconds = _best(warm, repeats=7) / batch
    _, stats = contract()
    return {
        "workload": (
            f"repeated 8-bit window contraction of the k={cc.num_cuts} "
            "chain, cold (path re-derived) vs warm (path cache hit)"
        ),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "warm_cache_hits": stats.path_cache_hits,
        "warm_cache_misses": stats.path_cache_misses,
    }


# the array-native data plane samples the 200q affine form at ~1.3M
# shots/s on a quiet machine (the dict-based seed managed ~41k); the CI
# floor is the 10x acceptance level (~600k nominal) with the 0.7 noise
# margin folded in, so shared-runner jitter does not block the build but
# a return of the per-outcome Python loops does
AFFINE_SAMPLING_FLOOR = 420_000.0

# distribution kernels measure ~30-60x over the dict baseline; gate well
# below so only a real regression (not allocator/scheduler noise) fails
DISTRIBUTION_KERNELS_FLOOR = 10.0


def main() -> int:
    results = {
        # which repro.kernels tier the single-tier numbers below ran under
        # (bench_kernel_tiers sweeps every available tier explicitly)
        "kernel_tier": rk.active_tier(),
        "tableau_200q": bench_tableau(),
        "affine_sampling": bench_sampling(),
        "distribution_kernels": bench_distribution_kernels(),
        "mps_sampling": bench_mps_sampling(),
        "reconstruction_k4": bench_reconstruction(),
        "streaming_reconstruction": bench_streaming_reconstruction(),
        "kernel_tiers": bench_kernel_tiers(),
        "einsum_path_cache": bench_path_cache(),
    }
    # atomic write: CI reads the artifact even if a later run is killed
    # mid-write, so stage to a tmp file and os.replace into place
    tmp = OUTPUT.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(results, indent=2) + "\n")
    os.replace(tmp, OUTPUT)
    print(json.dumps(results, indent=2))

    failures = []
    # conservative CI floor: the packed engine measures ~5.8x on a quiet
    # machine, but shared runners are noisy — gate on 3x so only a real
    # regression (not scheduler jitter) blocks the build
    if results["tableau_200q"]["speedup"] < 3.0:
        failures.append(
            f"tableau speedup {results['tableau_200q']['speedup']:.2f}x < 3x"
        )
    if results["affine_sampling"]["shots_per_second"] < AFFINE_SAMPLING_FLOOR:
        failures.append(
            "affine sampling "
            f"{results['affine_sampling']['shots_per_second']:,.0f} shots/s "
            f"< {AFFINE_SAMPLING_FLOOR:,.0f}"
        )
    if results["distribution_kernels"]["speedup"] < DISTRIBUTION_KERNELS_FLOOR:
        failures.append(
            "distribution kernels only "
            f"{results['distribution_kernels']['speedup']:.1f}x over the "
            f"dict baseline (< {DISTRIBUTION_KERNELS_FLOOR:.0f}x)"
        )
    if results["reconstruction_k4"]["speedup"] <= 1.0:
        failures.append(
            "einsum reconstruction no faster than the legacy loop "
            f"({results['reconstruction_k4']['speedup']:.2f}x)"
        )
    if results["reconstruction_k4"]["max_abs_diff"] > 1e-9:
        failures.append(
            "einsum reconstruction diverges from the loop by "
            f"{results['reconstruction_k4']['max_abs_diff']:.2e}"
        )
    streaming = results["streaming_reconstruction"]
    if streaming["max_abs_diff"] > 1e-9:
        failures.append(
            "windowed marginal diverges from the dense marginal by "
            f"{streaming['max_abs_diff']:.2e}"
        )
    # 2^21 dense accumulator vs 2^8 window = 8192x; gate well below so
    # only a real regression (the window re-densifying) fails
    if streaming["peak_memory_ratio"] < 1000.0:
        failures.append(
            "windowed reconstruction peak-memory ratio only "
            f"{streaming['peak_memory_ratio']:.0f}x (< 1000x)"
        )
    if streaming["speedup"] <= 1.0:
        failures.append(
            "windowed marginal no faster than dense-then-marginalize "
            f"({streaming['speedup']:.2f}x)"
        )
    if streaming["recursive_61q_covered"] < 1.0 - 1e-6:
        failures.append(
            "61q recursive reconstruction covers only "
            f"{streaming['recursive_61q_covered']:.6f} of the mass"
        )
    if streaming["recursive_61q_peak_entries"] > 2**16:
        failures.append(
            "61q recursive peak window "
            f"{streaming['recursive_61q_peak_entries']} entries > 2^16"
        )
    cache = results["einsum_path_cache"]
    if cache["warm_cache_misses"] != 0:
        failures.append(
            "warm windowed contraction still misses the einsum path cache "
            f"({cache['warm_cache_misses']} misses)"
        )
    # the warm path skips the greedy np.einsum_path derivation entirely;
    # gate just above parity so scheduler noise cannot block the build
    # but losing the cache (every contraction back to cold) does
    if cache["speedup"] < 1.05:
        failures.append(
            "einsum path cache warm speedup only "
            f"{cache['speedup']:.2f}x (< 1.05x)"
        )
    tiers = results["kernel_tiers"]
    for tier, entry in tiers.items():
        if entry.get("parity") not in ("reference", "ok"):
            failures.append(f"kernel tier {tier} failed parity")
    if "numba" in tiers:
        # acceptance level is 2x on a quiet machine; gate at 1.5x on at
        # least two of the three hot loops so shared-runner jitter does
        # not block the build but a dead JIT path does
        wins = sum(
            tiers["numba"][key] >= 1.5
            for key in (
                "speedup_tableau",
                "speedup_reconstruction",
                "speedup_distribution",
            )
        )
        if wins < 2:
            failures.append(
                f"numba tier >=1.5x on only {wins}/3 hot loops"
            )
    if failures:
        print("PERF SMOKE FAILURES:", "; ".join(failures), file=sys.stderr)
        return 1
    print("perf smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
