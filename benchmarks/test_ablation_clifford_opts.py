"""Ablation (paper §IX): Clifford-specific cutting optimizations.

Three SuperSim configurations on the HWEA workload, sampled fragments:

* ``baseline``  — generic cutting: full shots everywhere, no pruning;
* ``prune``     — zero-observable pruning of recombination terms;
* ``full``      — pruning + few-shot Clifford variants with expectation
  snapping (the "fewer requisite shots" optimization).

Expected: ``full`` needs ~60x fewer Clifford-fragment shots at equal or
better fidelity, and pruning skips a large fraction of the 4^k terms.
"""

import pytest

from benchmarks.conftest import (
    SHOTS,
    hwea_workload,
    marginal_fidelity,
    record,
    reference_marginals,
)
from repro.core import ExecutionConfig, SamplingConfig, SuperSim

WIDTH = 20

CONFIGS = {
    "baseline": dict(
        sampling=SamplingConfig(shots=SHOTS, seed=0),
        execution=ExecutionConfig(prune_zeros=False),
    ),
    "prune": dict(
        sampling=SamplingConfig(shots=SHOTS, seed=0),
        execution=ExecutionConfig(prune_zeros=True),
    ),
    "full": dict(
        sampling=SamplingConfig(
            shots=SHOTS, clifford_shots=64, snap_clifford=True, seed=0
        ),
        execution=ExecutionConfig(prune_zeros=True),
    ),
}


@pytest.mark.parametrize("config", list(CONFIGS))
def test_clifford_optimizations(benchmark, config):
    circuit = hwea_workload(WIDTH)
    sim = SuperSim(**CONFIGS[config])

    def task():
        return sim.single_qubit_marginals(circuit)

    marginals = benchmark.pedantic(task, rounds=1, iterations=1)
    reference = reference_marginals(circuit)
    fidelity = marginal_fidelity(marginals, reference)
    benchmark.extra_info["fidelity"] = fidelity
    record(
        "ablation_clifford_opts",
        config=config,
        n=WIDTH,
        seconds=benchmark.stats["mean"],
        fidelity=fidelity,
    )
    assert fidelity > 0.97, (config, fidelity)
