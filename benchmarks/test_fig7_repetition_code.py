"""Fig. 7: runtime and fidelity for one phase-repetition-code cycle (1 T).

The paper's QEC proxy benchmark.  Accuracy uses Hellinger fidelity on the
*complete* distribution (the sparse-output metric), with the exact SuperSim
reconstruction as ground truth.  Expected shape:

* MPS outperforms everything — the circuit generates almost no
  entanglement (the exception the paper highlights);
* SV is exponential and capped;
* the extended stabilizer's Metropolis sampler collapses in fidelity as
  width grows (the annotated points of the paper's Fig. 7);
* SuperSim scales with modest runtimes and exact-up-to-shots fidelity.
"""

from functools import lru_cache

import pytest

from benchmarks.conftest import SHOTS, record, repcode_workload
from repro.analysis import hellinger_fidelity
from repro.core import SamplingConfig, SuperSim
from repro.extended_stabilizer import ExtendedStabilizerSimulator
from repro.mps import MPSSimulator
from repro.statevector import StatevectorSimulator

DISTANCES = [3, 5, 7, 9, 11, 13, 16]  # n = 2d-1 = 5 ... 31
CAPS = {"statevector": 13, "mps": 31, "ext_stabilizer": 31, "supersim": 31}


@lru_cache(maxsize=None)
def ground_truth(distance: int):
    return SuperSim().sparse_probabilities(repcode_workload(distance))


def run(sim: str, distance: int):
    circuit = repcode_workload(distance)
    if sim == "supersim":
        return SuperSim(
            sampling=SamplingConfig(shots=SHOTS, seed=0)
        ).sparse_probabilities(circuit)
    if sim == "statevector":
        return StatevectorSimulator(max_qubits=24).sample(circuit, SHOTS, rng=0)
    if sim == "mps":
        return MPSSimulator().sample(circuit, SHOTS, rng=0)
    return ExtendedStabilizerSimulator().sample(circuit, SHOTS, rng=0)


def _cases():
    for sim in ("supersim", "statevector", "mps", "ext_stabilizer"):
        for d in DISTANCES:
            if 2 * d - 1 <= CAPS[sim]:
                yield sim, d


@pytest.mark.parametrize("sim,distance", list(_cases()))
def test_repetition_code(benchmark, sim, distance):
    n = 2 * distance - 1
    dist = benchmark.pedantic(lambda: run(sim, distance), rounds=1, iterations=1)
    fidelity = hellinger_fidelity(ground_truth(distance), dist)
    benchmark.extra_info["fidelity"] = fidelity
    record(
        "fig7",
        simulator=sim,
        n=n,
        distance=distance,
        seconds=benchmark.stats["mean"],
        fidelity=fidelity,
    )
    if sim in ("supersim", "statevector", "mps"):
        assert fidelity > 0.95, (sim, n, fidelity)
    # the extended stabilizer is *expected* to lose fidelity at scale —
    # that is the paper's observation, so no assertion there
