"""Fig. 3: runtime vs width for the VQE HWEA (5 rounds, 1 injected T gate).

Simulators: SuperSim (Clifford cut), statevector, MPS, extended stabilizer.
Expected shape: SV exponential (capped, like the paper's 30-min timeout at
28 qubits); MPS and extended stabilizer grow steadily; SuperSim is nearly
flat in width and overtakes the others in the 20-30 qubit range.

Accuracy: mean single-qubit-marginal Hellinger fidelity vs an exact
reference, the paper's dense-distribution metric (all points ~0.99+).
"""

import pytest

from benchmarks.conftest import (
    TASKS,
    hwea_workload,
    marginal_fidelity,
    record,
    reference_marginals,
)

SIZES = [4, 8, 12, 16, 20, 26, 32, 38]
CAPS = {"statevector": 20, "mps": 38, "ext_stabilizer": 38, "supersim": 38}


def _cases():
    for sim in ("supersim", "statevector", "mps", "ext_stabilizer"):
        for n in SIZES:
            if n <= CAPS[sim]:
                yield sim, n


@pytest.mark.parametrize("sim,n", list(_cases()))
def test_hwea_width(benchmark, sim, n):
    circuit = hwea_workload(n)
    task = TASKS[sim]
    marginals = benchmark.pedantic(lambda: task(circuit), rounds=1, iterations=1)
    reference = reference_marginals(circuit)
    fidelity = marginal_fidelity(marginals, reference) if reference is not None else None
    benchmark.extra_info["fidelity"] = fidelity
    record(
        "fig3",
        simulator=sim,
        n=n,
        seconds=benchmark.stats["mean"],
        fidelity=fidelity,
    )
    if fidelity is not None and sim != "ext_stabilizer":
        assert fidelity > 0.98, (sim, n, fidelity)
