"""Fig. 1: Clifford (Stim-style) vs statevector simulation of random
Clifford circuits, depth = width, 10000 shots.

Expected shape: the statevector sampler's runtime grows exponentially with
qubit number while the tableau sampler stays nearly flat, with a crossover
below ~10 qubits.
"""

import pytest

from benchmarks.conftest import (
    clifford_workload,
    record,
    run_stabilizer,
    run_statevector,
)

SIZES = [4, 8, 12, 16, 20]
SHOTS = 10_000


@pytest.mark.parametrize("n", SIZES)
def test_stabilizer(benchmark, n):
    circuit = clifford_workload(n)
    benchmark.pedantic(lambda: run_stabilizer(circuit, SHOTS), rounds=3, iterations=1)
    record("fig1", simulator="stabilizer", n=n, seconds=benchmark.stats["mean"])


@pytest.mark.parametrize("n", SIZES)
def test_statevector(benchmark, n):
    circuit = clifford_workload(n)
    benchmark.pedantic(lambda: run_statevector(circuit, SHOTS), rounds=3, iterations=1)
    record("fig1", simulator="statevector", n=n, seconds=benchmark.stats["mean"])
