"""Ablation: cut-placement strategy (paper Fig. 2 discussion).

``ISOLATE`` carves the non-Clifford gate out with the minimum-size
non-Clifford fragment; ``GREEDY_MERGE`` drops cuts whose removal keeps the
merged non-Clifford fragment small, trading a bigger exact simulation for a
factor-of-4 reduction in recombination terms per dropped cut.

The workload is built so the trade-off is real: a short single-qubit
Clifford prelude feeds the T gate before the wide Clifford bulk, so merging
the prelude into the T fragment removes one cut at negligible cost.
"""

from functools import lru_cache

import pytest

from benchmarks.conftest import record
from repro.circuits import Circuit, gates, random_clifford_circuit
from repro.core import CutConfig, CutStrategy, SuperSim, find_cuts

WIDTH = 12


@lru_cache(maxsize=None)
def staged_workload():
    circuit = Circuit(WIDTH)
    circuit.append(gates.H, 0).append(gates.S, 0)   # small Clifford prelude
    circuit.append(gates.T, 0)                       # the gate to isolate
    bulk = random_clifford_circuit(WIDTH, depth=8, rng=3)
    circuit.extend(bulk.ops)
    return circuit.measure_all()


@pytest.mark.parametrize("strategy", [CutStrategy.ISOLATE, CutStrategy.GREEDY_MERGE])
def test_cut_strategy(benchmark, strategy):
    circuit = staged_workload()
    sim = SuperSim(cut=CutConfig(strategy=strategy))

    def task():
        return sim.single_qubit_marginals(circuit)

    benchmark.pedantic(task, rounds=1, iterations=1)
    cuts = find_cuts(circuit, strategy)
    benchmark.extra_info["num_cuts"] = len(cuts)
    record(
        "ablation_cutter",
        strategy=strategy.value,
        n=WIDTH,
        num_cuts=len(cuts),
        seconds=benchmark.stats["mean"],
    )
