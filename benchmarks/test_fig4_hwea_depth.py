"""Fig. 4: runtime vs HWEA depth at fixed width (1 injected T gate).

SuperSim vs the MPS simulator.  Expected shape: MPS runtime grows
exponentially with the number of entangling rounds (bond dimension doubles
per round until saturation) while SuperSim is insensitive to depth — its
time goes into fragment postprocessing, not simulation (paper Fig. 4).

The paper uses 20 qubits; we use 16 to keep the exponential MPS points
inside a laptop-scale budget — the shape is unchanged.
"""

import pytest

from benchmarks.conftest import (
    TASKS,
    hwea_workload,
    marginal_fidelity,
    record,
    reference_marginals,
)

WIDTH = 16
ROUNDS = [1, 2, 4, 8, 12, 16]


@pytest.mark.parametrize("sim", ["supersim", "mps"])
@pytest.mark.parametrize("rounds", ROUNDS)
def test_hwea_depth(benchmark, sim, rounds):
    circuit = hwea_workload(WIDTH, rounds=rounds)
    task = TASKS[sim]
    marginals = benchmark.pedantic(lambda: task(circuit), rounds=1, iterations=1)
    reference = reference_marginals(circuit)
    fidelity = marginal_fidelity(marginals, reference) if reference is not None else None
    benchmark.extra_info["fidelity"] = fidelity
    record(
        "fig4",
        simulator=sim,
        rounds=rounds,
        n=WIDTH,
        seconds=benchmark.stats["mean"],
        fidelity=fidelity,
    )
