"""Shared benchmark machinery.

Every figure of the paper's evaluation gets one module; each (simulator,
size) pair is a pytest-benchmark case, so the benchmark table *is* the
figure's runtime series.  Fidelity and other per-point observations are
attached as ``extra_info`` and appended as JSON lines under
``benchmarks/_results/`` (pretty-print them with ``python benchmarks/report.py``).

All simulators are used as *samplers* building output distributions from
SHOTS = 5000 shots, like the paper's §VI methodology (Fig. 1 uses 10000).
Per-simulator width caps play the role of the paper's 30-minute timeout.
"""

from __future__ import annotations

import json
import pathlib
from functools import lru_cache

import numpy as np
import pytest

from repro.analysis.distributions import Distribution
from repro.apps.hwea import HWEA
from repro.apps.qaoa import near_clifford_qaoa
from repro.apps.qec import near_clifford_phase_code
from repro.backends import get_backend
from repro.circuits.random import random_clifford_circuit
from repro.core import SamplingConfig, SuperSim
from repro.statevector import StatevectorSimulator

SHOTS = 5000
RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


_OPENED_THIS_SESSION: set[str] = set()


def record(figure: str, **row) -> None:
    """Append a data point; the first write of a session truncates the file,
    so partial benchmark runs refresh only their own figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    mode = "a" if figure in _OPENED_THIS_SESSION else "w"
    _OPENED_THIS_SESSION.add(figure)
    with open(RESULTS_DIR / f"{figure}.jsonl", mode) as fh:
        fh.write(json.dumps(row) + "\n")


# -- deterministic workloads (cached so every simulator sees the same circuit)


@lru_cache(maxsize=None)
def hwea_workload(n: int, rounds: int = 5, num_t: int = 1, seed: int = 0):
    return HWEA(n, rounds).near_clifford_instance(num_t=num_t, rng=seed).measure_all()


@lru_cache(maxsize=None)
def qaoa_workload(n: int, seed: int = 0):
    return near_clifford_qaoa(n, rounds=1, num_t=1, rng=seed).measure_all()


@lru_cache(maxsize=None)
def repcode_workload(distance: int, seed: int = 0):
    return near_clifford_phase_code(distance, num_t=1, rng=seed)


@lru_cache(maxsize=None)
def clifford_workload(n: int, seed: int = 0):
    return random_clifford_circuit(n, depth=n, rng=seed).measure_all()


# -- simulator tasks ---------------------------------------------------------
# each returns (n, 2) single-qubit marginal probabilities, the paper's
# dense-distribution accuracy object, so results are comparable across
# backends at any width.  Standalone backends are resolved from the
# repro.backends registry by name, so a newly registered backend becomes a
# benchmark series by adding one backend_task() line.


def backend_task(name: str, **kwargs):
    """A benchmark task sampling through a registry backend."""

    def run(circuit, shots=SHOTS) -> np.ndarray:
        dist = get_backend(name, **kwargs).sample(circuit, shots, rng=0)
        return dist.single_bit_marginals()

    run.__name__ = f"run_{name}"
    return run


run_statevector = backend_task("statevector", max_qubits=24)
run_stabilizer = backend_task("stabilizer")
run_mps = backend_task("mps")
run_extended_stabilizer = backend_task("extended_stabilizer")


def run_supersim(circuit, shots=SHOTS) -> np.ndarray:
    sim = SuperSim(sampling=SamplingConfig(shots=shots, seed=0))
    return sim.single_qubit_marginals(circuit)


TASKS = {
    "supersim": run_supersim,
    "statevector": run_statevector,
    "mps": run_mps,
    "ext_stabilizer": run_extended_stabilizer,
    "stabilizer": run_stabilizer,
}


def reference_marginals(circuit) -> np.ndarray | None:
    """Exact per-qubit marginals where feasible (SV small, SuperSim exact)."""
    if circuit.n_qubits <= 16:
        return (
            StatevectorSimulator()
            .probabilities(circuit)
            .single_bit_marginals()
        )
    try:
        return SuperSim().single_qubit_marginals(circuit)
    except Exception:
        return None


def marginal_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    fids = (np.sqrt(np.clip(a, 0, None) * np.clip(b, 0, None)).sum(axis=1)) ** 2
    return float(fids.mean())


