"""Fig. 6: runtime vs width for SK-model MaxCut QAOA (1 round, 1 T gate).

All-to-all connectivity makes this the MPS-hostile benchmark: long-range
ZZ couplings force SWAP routing and volume-law entanglement.  Expected
shape: SV exponential (capped at 16); MPS blows up quickly (capped at 14,
standing in for the paper's 30-minute timeout); extended stabilizer grows
polynomially but from a high constant; SuperSim crosses everything in the
low-20s of qubits.
"""

import pytest

from benchmarks.conftest import (
    TASKS,
    marginal_fidelity,
    qaoa_workload,
    record,
    reference_marginals,
)

SIZES = [4, 8, 12, 16, 20, 26]
CAPS = {"statevector": 20, "mps": 26, "ext_stabilizer": 26, "supersim": 26}


def _cases():
    for sim in ("supersim", "statevector", "mps", "ext_stabilizer"):
        for n in SIZES:
            if n <= CAPS[sim]:
                yield sim, n


@pytest.mark.parametrize("sim,n", list(_cases()))
def test_qaoa_width(benchmark, sim, n):
    circuit = qaoa_workload(n)
    task = TASKS[sim]
    marginals = benchmark.pedantic(lambda: task(circuit), rounds=1, iterations=1)
    reference = reference_marginals(circuit)
    fidelity = marginal_fidelity(marginals, reference) if reference is not None else None
    benchmark.extra_info["fidelity"] = fidelity
    record(
        "fig6",
        simulator=sim,
        n=n,
        seconds=benchmark.stats["mean"],
        fidelity=fidelity,
    )
    if fidelity is not None and sim != "ext_stabilizer":
        assert fidelity > 0.98, (sim, n, fidelity)
